package campaign

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/netsecurelab/mtasts/internal/store"
)

// WeekSummary aggregates one stored week — the row a trend table
// renders. It is recomputed from stored records, never accumulated
// during the scan, so resumed and uninterrupted runs summarize
// identically.
type WeekSummary struct {
	Week    int
	Domains int
	// Deployment funnel.
	Present  int
	Valid    int
	PolicyOK int
	// Policy modes among PolicyOK domains.
	Enforce int
	Testing int
	// Health.
	Misconfigured   int
	DeliveryFailure int
	Canceled        int
	// ByCategory counts Figure 4 category keys; ByCode errtax codes.
	ByCategory map[string]int
	ByCode     map[string]int
}

// ScanWeek visits one week's stored records in ascending domain order,
// handing the callback each record's raw canonical encoding alongside
// its decoded form — raw for byte-exact re-emission (snapshots, the
// service's result streams), decoded for inspection (joins,
// aggregation).
func ScanWeek(s store.Store, id string, week int, fn func(raw []byte, rec DomainRecord) error) error {
	return s.Scan(weekPrefix(id, week), func(_ string, v []byte) error {
		rec, err := DecodeRecord(v)
		if err != nil {
			return err
		}
		return fn(v, rec)
	})
}

// Aggregate scans one week's records and folds them into a summary.
func Aggregate(s store.Store, id string, week int) (WeekSummary, error) {
	sum := WeekSummary{
		Week:       week,
		ByCategory: make(map[string]int),
		ByCode:     make(map[string]int),
	}
	err := ScanWeek(s, id, week, func(_ []byte, rec DomainRecord) error {
		sum.Domains++
		if rec.Present {
			sum.Present++
		}
		if rec.Valid {
			sum.Valid++
		}
		if rec.PolicyOK {
			sum.PolicyOK++
			switch rec.Mode {
			case "enforce":
				sum.Enforce++
			case "testing":
				sum.Testing++
			}
		}
		if rec.Misconfigured() {
			sum.Misconfigured++
		}
		if rec.DeliveryFailure {
			sum.DeliveryFailure++
		}
		if rec.Canceled {
			sum.Canceled++
		}
		for _, c := range rec.Categories {
			sum.ByCategory[c]++
		}
		for _, c := range rec.Codes {
			sum.ByCode[c]++
		}
		return nil
	})
	return sum, err
}

// WriteSnapshot exports one week as canonical JSONL: one record value
// per line, in ascending domain order. Because record encoding is
// canonical and Scan order is specified, two stores holding the same
// verdicts export byte-identical snapshots — the crash-resume
// determinism contract (resume_test.go).
func WriteSnapshot(w io.Writer, s store.Store, id string, week int) error {
	return s.Scan(weekPrefix(id, week), func(_ string, v []byte) error {
		if _, err := w.Write(v); err != nil {
			return err
		}
		_, err := w.Write([]byte{'\n'})
		return err
	})
}

// Status describes a campaign's stored state for the CLI.
type Status struct {
	Meta Meta
	// Weeks maps week → completed shard count (including weeks that are
	// only partially scanned and not yet in Meta.WeeksDone).
	Weeks map[int]int
	// Records is the total stored domain-record count.
	Records int
	// StoreBytes is the backing store's size when it reports one.
	StoreBytes int64
}

// ReadStatus inspects a campaign's stored state.
func ReadStatus(s store.Store, id string) (Status, error) {
	if err := validateID(id); err != nil {
		return Status{}, err
	}
	st := Status{Weeks: make(map[int]int)}
	meta, _, err := LoadMeta(s, id)
	if err != nil {
		return Status{}, err
	}
	st.Meta = meta
	st.Meta.ID = id
	err = s.Scan(allCheckpointsPrefix(id), func(k string, _ []byte) error {
		rest := strings.TrimPrefix(k, allCheckpointsPrefix(id))
		wk, _, ok := strings.Cut(rest, "/")
		if !ok {
			return fmt.Errorf("campaign: malformed checkpoint key %q", k)
		}
		w, err := strconv.Atoi(wk)
		if err != nil {
			return fmt.Errorf("campaign: malformed checkpoint key %q", k)
		}
		st.Weeks[w]++
		return nil
	})
	if err != nil {
		return Status{}, err
	}
	for w := range st.Weeks {
		n, err := store.Len(s, weekPrefix(id, w))
		if err != nil {
			return Status{}, err
		}
		st.Records += n
	}
	if sz, ok := s.(store.Sizer); ok {
		st.StoreBytes = sz.SizeBytes()
	}
	return st, nil
}
