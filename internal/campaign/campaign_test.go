package campaign

import (
	"context"
	"sort"
	"testing"

	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/simnet"
	"github.com/netsecurelab/mtasts/internal/store"
)

// testWorld is the shared small world; snapshots are cheap to
// rematerialize per test.
var testWorld = simnet.Generate(simnet.Config{Seed: 11, Scale: 0.02})

// snapshotSource returns the sorted domain list and an artifact scanner
// for one simnet snapshot — the offline equivalent of a weekly sweep.
func snapshotSource(w *simnet.World, t int) (DomainSource, scanner.Scanner, int) {
	var (
		names []string
		arts  []scanner.Artifacts
	)
	for _, d := range w.Domains {
		if a, ok := w.ArtifactsAt(d, t); ok {
			names = append(names, d.Name)
			arts = append(arts, a)
		}
	}
	sort.Strings(names)
	return SliceSource(names), scanner.NewArtifactScanner(arts, simnet.SnapshotTime(t), 0), len(names)
}

// weekSnapshot maps campaign week w onto the simnet snapshot index: the
// component-scan era advances one snapshot per week.
func weekSnapshot(w int) int {
	t := simnet.ComponentScanFirstIndex + w
	if t > simnet.Months-1 {
		t = simnet.Months - 1
	}
	return t
}

func runTestWeek(t *testing.T, s store.Store, id string, week, shardSize, stopAfter int) (int, error) {
	t.Helper()
	src, scan, n := snapshotSource(testWorld, weekSnapshot(week))
	eng := &Engine{
		Store:           s,
		Runner:          &scanner.Runner{Workers: 8, Scan: scan},
		ID:              id,
		ShardSize:       shardSize,
		StopAfterShards: stopAfter,
	}
	return n, eng.RunWeek(context.Background(), week, src)
}

func TestRunWeekStoresEveryDomain(t *testing.T) {
	s := NewMemForTest()
	n, err := runTestWeek(t, s, "w1", 0, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty snapshot; scale too small")
	}
	got, err := store.Len(s, weekPrefix("w1", 0))
	if err != nil || got != n {
		t.Fatalf("stored %d records err=%v, want %d", got, err, n)
	}

	// The stored aggregate must agree with summarizing the same scan
	// directly (same scanner, so the same host-consistent MX view).
	src, scan, _ := snapshotSource(testWorld, weekSnapshot(0))
	var domains []string
	if err := src(func(d string) error { domains = append(domains, d); return nil }); err != nil {
		t.Fatal(err)
	}
	results := (&scanner.Runner{Workers: 8, Scan: scan}).Run(context.Background(), domains)
	want := scanner.Summarize(results)
	sum, err := Aggregate(s, "w1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Domains != len(results) || sum.Misconfigured != want.Misconfigured ||
		sum.DeliveryFailure != want.DeliveryFailures {
		t.Fatalf("Aggregate = %+v, want to match scanner summary %+v", sum, want)
	}
	for code, cnt := range want.ByCode {
		if sum.ByCode[string(code)] != cnt {
			t.Fatalf("ByCode[%s] = %d, want %d", code, sum.ByCode[string(code)], cnt)
		}
	}

	st, err := ReadStatus(s, "w1")
	if err != nil {
		t.Fatal(err)
	}
	wantShards := (n + 63) / 64
	if st.Weeks[0] != wantShards || st.Records != n {
		t.Fatalf("Status = %+v, want %d shards / %d records", st, wantShards, n)
	}
	if len(st.Meta.WeeksDone) != 1 || st.Meta.WeeksDone[0] != 0 {
		t.Fatalf("WeeksDone = %v, want [0]", st.Meta.WeeksDone)
	}
}

func TestResumeSkipsCheckpointedShards(t *testing.T) {
	s := NewMemForTest()
	if _, err := runTestWeek(t, s, "w2", 0, 64, 0); err != nil {
		t.Fatal(err)
	}
	// Re-running the identical week must scan nothing.
	src, scan, _ := snapshotSource(testWorld, weekSnapshot(0))
	reg := obs.NewRegistry()
	eng := &Engine{
		Store:  s,
		Runner: &scanner.Runner{Workers: 4, Scan: scan},
		ID:     "w2", ShardSize: 64, Obs: reg,
	}
	if err := eng.RunWeek(context.Background(), 0, src); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("campaign.shards.completed").Value(); got != 0 {
		t.Fatalf("re-run scanned %d shards, want 0", got)
	}
	if got := reg.Counter("campaign.shards.skipped").Value(); got == 0 {
		t.Fatal("re-run skipped no shards")
	}
}

func TestResumeRejectsChangedSource(t *testing.T) {
	s := NewMemForTest()
	if _, err := runTestWeek(t, s, "w3", 0, 64, 0); err != nil {
		t.Fatal(err)
	}
	src, scan, _ := snapshotSource(testWorld, weekSnapshot(1)) // different snapshot = different list
	eng := &Engine{
		Store:  s,
		Runner: &scanner.Runner{Workers: 4, Scan: scan},
		ID:     "w3", ShardSize: 64,
	}
	if err := eng.RunWeek(context.Background(), 0, src); err == nil {
		t.Fatal("resume over a changed source succeeded; want checkpoint mismatch")
	}
}

func TestStopAfterShards(t *testing.T) {
	s := NewMemForTest()
	n, err := runTestWeek(t, s, "w4", 0, 32, 2)
	if err != ErrStopped {
		t.Fatalf("RunWeek = %v, want ErrStopped", err)
	}
	got, lenErr := store.Len(s, weekPrefix("w4", 0))
	if lenErr != nil || got != 2*32 {
		t.Fatalf("stored %d records err=%v, want exactly 2 shards (%d)", got, lenErr, 2*32)
	}
	if n <= 2*32 {
		t.Fatalf("snapshot has %d domains; too small to interrupt meaningfully", n)
	}
	// The interrupted week must not be marked done.
	if _, ok, err := LoadMeta(s, "w4"); err != nil || ok {
		t.Fatalf("meta exists after interrupted week (ok=%v err=%v)", ok, err)
	}
}

func TestEngineValidation(t *testing.T) {
	eng := &Engine{Store: NewMemForTest(), Runner: &scanner.Runner{Workers: 1, Scan: scanner.NewArtifactScanner(nil, simnet.SnapshotTime(0), 0)}}
	for _, id := range []string{"", "a/b", "a b"} {
		eng.ID = id
		if err := eng.RunWeek(context.Background(), 0, SliceSource(nil)); err == nil {
			t.Fatalf("ID %q accepted", id)
		}
	}
	eng.ID = "ok"
	if err := eng.RunWeek(context.Background(), -1, SliceSource(nil)); err == nil {
		t.Fatal("negative week accepted")
	}
	if err := eng.RunWeek(context.Background(), 0, SliceSource([]string{""})); err == nil {
		t.Fatal("empty domain accepted")
	}
}

// NewMemForTest keeps test call sites honest about which backend they
// use (the resume tests use Disk explicitly).
func NewMemForTest() store.Store { return store.NewMem() }
