package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/store"
)

// DefaultShardSize is the per-shard domain count when Engine.ShardSize
// is unset: large enough to keep the runner's worker pool busy, small
// enough that a shard's results are a trivial memory bound.
const DefaultShardSize = 1024

// ErrStopped is returned by RunWeek when the engine hit its
// StopAfterShards budget: the run is healthy but deliberately
// interrupted (the CLI maps it to exit code 3 for crash drills).
var ErrStopped = errors.New("campaign: stopped after shard budget")

// DomainSource streams a campaign's domain list in a stable order; the
// engine never materializes the full list. Returning an error from fn
// aborts the stream with that error.
type DomainSource func(fn func(domain string) error) error

// SliceSource adapts an in-memory domain list.
func SliceSource(domains []string) DomainSource {
	return func(fn func(string) error) error {
		for _, d := range domains {
			if err := fn(d); err != nil {
				return err
			}
		}
		return nil
	}
}

// Checkpoint marks one durably-stored shard. Count and Hash fingerprint
// the shard's domain slice so a resume over a *different* source list is
// detected instead of silently mixing scans.
type Checkpoint struct {
	Count int    `json:"count"`
	Hash  string `json:"hash"`
}

// Meta is the campaign's stored metadata.
type Meta struct {
	ID        string `json:"id"`
	ShardSize int    `json:"shard_size"`
	// WeeksDone lists completed weeks in ascending order.
	WeeksDone []int `json:"weeks_done,omitempty"`
}

// Engine runs campaign weeks: sharded, checkpointed, resumable scans
// whose results stream to a store.
type Engine struct {
	// Store persists records and checkpoints. Required.
	Store store.Store
	// Runner executes each shard's scan. Required.
	Runner *scanner.Runner
	// ID names the campaign inside the store. Required; no '/'.
	ID string
	// ShardSize is the per-shard domain count (DefaultShardSize if 0).
	ShardSize int
	// Obs, when non-nil, receives the campaign.* metrics cataloged in
	// docs/OBSERVABILITY.md.
	Obs *obs.Registry
	// Events, when non-nil, receives campaign.week.start/end and
	// campaign.shard.done events.
	Events *obs.EventSink
	// StopAfterShards, when > 0, makes RunWeek return ErrStopped after
	// that many shards have been *scanned* (skipped checkpointed shards
	// do not count) — the crash-drill hook behind the CLI's
	// -stop-after-shards flag and the resume tests.
	StopAfterShards int
}

func (e *Engine) shardSize() int {
	if e.ShardSize > 0 {
		return e.ShardSize
	}
	return DefaultShardSize
}

// RunWeek scans one week of the campaign: it streams the source into
// shards, skips shards whose checkpoint already exists (resume), scans
// the rest via the Runner, and after the final shard records the week
// in the campaign metadata. Memory is bounded by one shard plus the
// store's index regardless of the source's length.
func (e *Engine) RunWeek(ctx context.Context, week int, src DomainSource) error {
	if err := validateID(e.ID); err != nil {
		return err
	}
	if e.Store == nil || e.Runner == nil {
		return fmt.Errorf("campaign: Engine needs both Store and Runner")
	}
	if week < 0 || week >= maxWeeks {
		return fmt.Errorf("campaign: week %d out of range [0, %d)", week, maxWeeks)
	}
	weekStart := time.Now()
	if e.Events != nil {
		e.Events.Emit("campaign.week.start", map[string]any{
			"campaign": e.ID, "week": week, "shard_size": e.shardSize(),
		})
	}
	var (
		shard   = make([]string, 0, e.shardSize())
		shardIx = 0
		scanned = 0
	)
	flush := func() error {
		if len(shard) == 0 {
			return nil
		}
		ix := shardIx
		shardIx++
		done, err := e.runShard(ctx, week, ix, shard)
		shard = shard[:0]
		if err != nil {
			return err
		}
		if done {
			scanned++
			if e.StopAfterShards > 0 && scanned >= e.StopAfterShards {
				return ErrStopped
			}
		}
		return nil
	}
	err := src(func(d string) error {
		if d == "" {
			return fmt.Errorf("campaign: empty domain in source")
		}
		shard = append(shard, d)
		if len(shard) >= e.shardSize() {
			return flush()
		}
		return nil
	})
	if err == nil {
		err = flush()
	}
	if err != nil {
		return err
	}
	if shardIx >= maxShards {
		return fmt.Errorf("campaign: week %d needs %d shards, max %d", week, shardIx, maxShards)
	}
	if err := e.finishWeek(week); err != nil {
		return err
	}
	if e.Obs.Enabled() {
		e.Obs.Counter("campaign.weeks.completed").Inc()
		e.Obs.Histogram("campaign.week.seconds", nil).ObserveSince(weekStart)
	}
	if e.Events != nil {
		e.Events.Emit("campaign.week.end", map[string]any{
			"campaign": e.ID, "week": week, "shards": shardIx,
			"seconds": time.Since(weekStart).Seconds(),
		})
	}
	return nil
}

// runShard scans one shard unless its checkpoint says it is already
// stored. done reports whether a scan actually ran (vs. a resume skip).
func (e *Engine) runShard(ctx context.Context, week, ix int, domains []string) (done bool, err error) {
	ck := Checkpoint{Count: len(domains), Hash: shardHash(domains)}
	ckKey := checkpointKey(e.ID, week, ix)
	if raw, ok, err := e.Store.Get(ckKey); err != nil {
		return false, err
	} else if ok {
		var have Checkpoint
		if err := json.Unmarshal(raw, &have); err != nil {
			return false, fmt.Errorf("campaign: decode checkpoint %s: %w", ckKey, err)
		}
		if have != ck {
			return false, fmt.Errorf("campaign: shard %d of week %d was checkpointed over a different domain list (have %d domains hash %s, resuming with %d hash %s) — the source changed between run and resume",
				ix, week, have.Count, have.Hash, ck.Count, ck.Hash)
		}
		e.Obs.Counter("campaign.shards.skipped").Inc()
		return false, nil
	}

	results := e.Runner.Run(ctx, domains)
	if ctx.Err() != nil {
		// Canceled placeholders are partial evidence; store nothing and
		// let a resume re-scan the shard cleanly.
		return false, ctx.Err()
	}
	entries := make([]store.Entry, 0, len(results))
	for i := range results {
		rec := FromResult(&results[i])
		v, err := rec.Encode()
		if err != nil {
			return false, err
		}
		entries = append(entries, store.Entry{Key: recordKey(e.ID, week, rec.Domain), Value: v})
	}
	if err := e.Store.Batch(entries); err != nil {
		return false, err
	}
	// Order matters: results must be durable before the checkpoint can
	// claim them (docs/CAMPAIGN.md "Crash recovery").
	if err := e.Store.Sync(); err != nil {
		return false, err
	}
	ckStart := time.Now()
	raw, err := json.Marshal(ck)
	if err != nil {
		return false, err
	}
	if err := e.Store.Put(ckKey, raw); err != nil {
		return false, err
	}
	if err := e.Store.Sync(); err != nil {
		return false, err
	}
	if e.Obs.Enabled() {
		e.Obs.Histogram("campaign.checkpoint.seconds", nil).ObserveSince(ckStart)
		e.Obs.Counter("campaign.shards.completed").Inc()
		e.Obs.Counter("campaign.domains.stored").Add(int64(len(entries)))
		if sz, ok := e.Store.(store.Sizer); ok {
			e.Obs.Gauge("campaign.store.bytes").Set(sz.SizeBytes())
		}
	}
	if e.Events != nil {
		e.Events.Emit("campaign.shard.done", map[string]any{
			"campaign": e.ID, "week": week, "shard": ix, "domains": len(domains),
		})
	}
	return true, nil
}

// finishWeek records week as done in the campaign metadata.
func (e *Engine) finishWeek(week int) error {
	meta, _, err := LoadMeta(e.Store, e.ID)
	if err != nil {
		return err
	}
	meta.ID = e.ID
	meta.ShardSize = e.shardSize()
	for _, w := range meta.WeeksDone {
		if w == week {
			return e.putMeta(meta)
		}
	}
	meta.WeeksDone = append(meta.WeeksDone, week)
	sort.Ints(meta.WeeksDone)
	return e.putMeta(meta)
}

func (e *Engine) putMeta(meta Meta) error {
	raw, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	if err := e.Store.Put(metaKey(e.ID), raw); err != nil {
		return err
	}
	return e.Store.Sync()
}

// LoadMeta reads a campaign's metadata; ok is false when the campaign
// has never completed a week.
func LoadMeta(s store.Store, id string) (meta Meta, ok bool, err error) {
	raw, ok, err := s.Get(metaKey(id))
	if err != nil || !ok {
		return Meta{}, false, err
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		return Meta{}, false, fmt.Errorf("campaign: decode meta for %s: %w", id, err)
	}
	return meta, true, nil
}

// shardHash fingerprints a shard's domain slice.
func shardHash(domains []string) string {
	h := sha256.New()
	for _, d := range domains {
		h.Write([]byte(d))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}
