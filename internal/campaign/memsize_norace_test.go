//go:build !race

package campaign

// memTestDomains is the bounded-memory test population: the acceptance
// bar is "at least a million domains without materializing the run".
const memTestDomains = 1_000_000
