//go:build race

package campaign

// memTestDomains shrinks under the race detector, whose instrumentation
// multiplies both runtime and heap; the bound being tested is the same.
const memTestDomains = 150_000
