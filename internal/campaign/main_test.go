package campaign

import (
	"testing"

	"github.com/netsecurelab/mtasts/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running:
// every pool, watcher and coalesced fetch spawned here must be joined
// by the time its test returns.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
