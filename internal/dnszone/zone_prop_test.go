package dnszone

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
)

// Property tests for the zone store and its text format. They are
// seeded, not time-randomized, so a failure reproduces with the printed
// seed.

const propOrigin = "test"

func randLabel(rng *rand.Rand) string {
	const chars = "abcdefghijklmnopqrstuvwxyz0123456789-"
	n := 1 + rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = chars[rng.Intn(len(chars))]
	}
	return string(b)
}

func randName(rng *rand.Rand) string {
	labels := make([]string, 1+rng.Intn(3))
	for i := range labels {
		labels[i] = randLabel(rng)
	}
	return strings.Join(labels, ".") + "." + propOrigin
}

// randTXT draws strings over the full byte range, so quoting must cope
// with spaces, quotes, backslashes, control bytes, and invalid UTF-8.
func randTXT(rng *rand.Rand) []string {
	strs := make([]string, 1+rng.Intn(3))
	for i := range strs {
		b := make([]byte, rng.Intn(24))
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		strs[i] = string(b)
	}
	return strs
}

func randRR(rng *rand.Rand) dnsmsg.RR {
	rr := dnsmsg.RR{Name: randName(rng), Class: dnsmsg.ClassIN, TTL: uint32(rng.Intn(100000))}
	switch rng.Intn(6) {
	case 0:
		rr.Type = dnsmsg.TypeA
		var ip [4]byte
		rng.Read(ip[:])
		rr.Data = dnsmsg.AData{Addr: netip.AddrFrom4(ip)}
	case 1:
		rr.Type = dnsmsg.TypeAAAA
		var ip [16]byte
		rng.Read(ip[:])
		ip[0] = 0x20 // keep it a plain IPv6 address, never 4-in-6
		rr.Data = dnsmsg.AAAAData{Addr: netip.AddrFrom16(ip)}
	case 2:
		rr.Type = dnsmsg.TypeNS
		rr.Data = dnsmsg.NSData{Host: randName(rng)}
	case 3:
		rr.Type = dnsmsg.TypeCNAME
		rr.Data = dnsmsg.CNAMEData{Target: randName(rng)}
	case 4:
		rr.Type = dnsmsg.TypeMX
		rr.Data = dnsmsg.MXData{Preference: uint16(rng.Intn(1 << 16)), Host: randName(rng)}
	default:
		rr.Type = dnsmsg.TypeTXT
		rr.Data = dnsmsg.TXTData{Strings: randTXT(rng)}
	}
	return rr
}

// TestZoneFileRoundTripProperty: serializing a random zone, parsing the
// text back, and serializing again must reproduce the text byte for
// byte, with no records gained or lost. The first WriteTo output is
// already canonical (Add canonicalizes owners, Names sorts), so the
// round trip is an exact fixed point, not merely an equivalence.
func TestZoneFileRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		z := New(propOrigin)
		added := 0
		for i := 0; i < 5+rng.Intn(60); i++ {
			// CNAME-exclusivity makes some draws invalid by construction;
			// those must be rejected, never silently stored.
			if err := z.Add(randRR(rng)); err == nil {
				added++
			}
		}
		if z.Len() != added {
			t.Fatalf("seed %d: zone holds %d records, accepted %d", seed, z.Len(), added)
		}

		var s1 bytes.Buffer
		if _, err := z.WriteTo(&s1); err != nil {
			t.Fatalf("seed %d: WriteTo: %v", seed, err)
		}
		z2, err := ParseFile(bytes.NewReader(s1.Bytes()), "")
		if err != nil {
			t.Fatalf("seed %d: ParseFile: %v\nzone:\n%s", seed, err, s1.String())
		}
		if z2.Origin() != z.Origin() {
			t.Fatalf("seed %d: origin %q became %q", seed, z.Origin(), z2.Origin())
		}
		if z2.Len() != z.Len() {
			t.Fatalf("seed %d: %d records became %d", seed, z.Len(), z2.Len())
		}
		var s2 bytes.Buffer
		if _, err := z2.WriteTo(&s2); err != nil {
			t.Fatalf("seed %d: second WriteTo: %v", seed, err)
		}
		if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
			t.Fatalf("seed %d: round trip is not a fixed point:\nfirst:\n%s\nsecond:\n%s",
				seed, s1.String(), s2.String())
		}
	}
}

// TestCNAMEChaseTerminationProperty: on arbitrary CNAME graphs —
// including self-loops, long cycles, and dangling or out-of-zone
// targets — Lookup must always return, with answers bounded by the
// chase limit, SERVFAIL on in-zone loops, and the same result twice.
func TestCNAMEChaseTerminationProperty(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		n := 2 + rng.Intn(20)
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("n%02d.%s", i, propOrigin)
		}
		z := New(propOrigin)
		for i, name := range nodes {
			switch rng.Intn(10) {
			case 0: // terminator: plain address record
				z.MustAdd(dnsmsg.RR{Name: name, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 60,
					Data: dnsmsg.AData{Addr: netip.AddrFrom4([4]byte{127, 0, 0, byte(i)})}})
			case 1: // out-of-zone target: chase must stop at the zone cut
				z.MustAdd(dnsmsg.RR{Name: name, Type: dnsmsg.TypeCNAME, Class: dnsmsg.ClassIN, TTL: 60,
					Data: dnsmsg.CNAMEData{Target: "external.example"}})
			default: // random in-zone edge — cycles and self-loops included
				z.MustAdd(dnsmsg.RR{Name: name, Type: dnsmsg.TypeCNAME, Class: dnsmsg.ClassIN, TTL: 60,
					Data: dnsmsg.CNAMEData{Target: nodes[rng.Intn(n)]}})
			}
		}

		for _, name := range nodes {
			res, err := z.Lookup(name, dnsmsg.TypeA)
			if err != nil {
				t.Fatalf("seed %d: Lookup(%s): %v", seed, name, err)
			}
			if len(res.Answers) > maxCNAMEChain+1 {
				t.Fatalf("seed %d: Lookup(%s) returned %d answers, chase limit is %d",
					seed, name, len(res.Answers), maxCNAMEChain)
			}
			if res.RCode == dnsmsg.RCodeServFail {
				// A detected loop surfaces the truncated chase trace: a full
				// chain of CNAMEs and nothing else.
				if len(res.Answers) != maxCNAMEChain+1 {
					t.Fatalf("seed %d: Lookup(%s) SERVFAIL with %d answers, want %d",
						seed, name, len(res.Answers), maxCNAMEChain+1)
				}
				if last := res.Answers[len(res.Answers)-1]; last.Type != dnsmsg.TypeCNAME {
					t.Fatalf("seed %d: Lookup(%s) SERVFAIL chain ends in %s", seed, name, last.Type)
				}
			}
			if res.RCode == dnsmsg.RCodeSuccess && !res.NameExists {
				t.Fatalf("seed %d: Lookup(%s) NOERROR on a name that was added", seed, name)
			}
			// Every answer before the last must be a CNAME step; only the
			// final one may carry the address.
			for j, rr := range res.Answers[:max(0, len(res.Answers)-1)] {
				if rr.Type != dnsmsg.TypeCNAME {
					t.Fatalf("seed %d: Lookup(%s) answer %d is %s mid-chain", seed, name, j, rr.Type)
				}
			}
			again, err := z.Lookup(name, dnsmsg.TypeA)
			if err != nil || again.RCode != res.RCode || len(again.Answers) != len(res.Answers) {
				t.Fatalf("seed %d: Lookup(%s) not deterministic: %+v vs %+v (err %v)",
					seed, name, res, again, err)
			}
		}
	}
}
