package dnszone

import (
	"bufio"
	"encoding/base64"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
)

// ParseFile reads a zone in the simplified text format written by
// WriteTo: one record per line,
//
//	<owner> <ttl> IN <type> <rdata...>
//
// with '#' or ';' comments and blank lines ignored. A "$ORIGIN <name>" line
// sets the zone origin; otherwise the first record's owner's registrable
// suffix is NOT inferred — origin must be supplied via $ORIGIN or the
// origin argument (pass "" to require $ORIGIN).
func ParseFile(r io.Reader, origin string) (*Zone, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var z *Zone
	if origin != "" {
		z = New(origin)
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == ';' {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "$ORIGIN"); ok {
			if z != nil {
				return nil, fmt.Errorf("line %d: duplicate origin", lineNo)
			}
			z = New(strings.TrimSpace(rest))
			continue
		}
		if z == nil {
			return nil, fmt.Errorf("line %d: record before $ORIGIN", lineNo)
		}
		rr, err := parseRecordLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if err := z.Add(rr); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if z == nil {
		return nil, fmt.Errorf("empty zone file and no origin given")
	}
	return z, nil
}

func parseRecordLine(line string) (dnsmsg.RR, error) {
	fields := splitFields(line)
	if len(fields) < 5 {
		return dnsmsg.RR{}, fmt.Errorf("need at least 5 fields, got %d", len(fields))
	}
	ttl, err := strconv.ParseUint(fields[1], 10, 32)
	if err != nil {
		return dnsmsg.RR{}, fmt.Errorf("bad TTL %q: %w", fields[1], err)
	}
	if fields[2] != "IN" {
		return dnsmsg.RR{}, fmt.Errorf("unsupported class %q", fields[2])
	}
	t, err := dnsmsg.ParseType(fields[3])
	if err != nil {
		return dnsmsg.RR{}, err
	}
	rr := dnsmsg.RR{Name: fields[0], TTL: uint32(ttl), Class: dnsmsg.ClassIN, Type: t}
	rd := fields[4:]
	switch t {
	case dnsmsg.TypeA:
		addr, err := netip.ParseAddr(rd[0])
		if err != nil || !addr.Is4() {
			return dnsmsg.RR{}, fmt.Errorf("bad A address %q", rd[0])
		}
		rr.Data = dnsmsg.AData{Addr: addr}
	case dnsmsg.TypeAAAA:
		addr, err := netip.ParseAddr(rd[0])
		if err != nil || !addr.Is6() || addr.Is4In6() {
			return dnsmsg.RR{}, fmt.Errorf("bad AAAA address %q", rd[0])
		}
		rr.Data = dnsmsg.AAAAData{Addr: addr}
	case dnsmsg.TypeNS:
		rr.Data = dnsmsg.NSData{Host: rd[0]}
	case dnsmsg.TypeCNAME:
		rr.Data = dnsmsg.CNAMEData{Target: rd[0]}
	case dnsmsg.TypeMX:
		if len(rd) != 2 {
			return dnsmsg.RR{}, fmt.Errorf("MX needs preference and host")
		}
		pref, err := strconv.ParseUint(rd[0], 10, 16)
		if err != nil {
			return dnsmsg.RR{}, fmt.Errorf("bad MX preference %q", rd[0])
		}
		rr.Data = dnsmsg.MXData{Preference: uint16(pref), Host: rd[1]}
	case dnsmsg.TypeTXT:
		strs := make([]string, len(rd))
		for i, q := range rd {
			s, err := strconv.Unquote(q)
			if err != nil {
				return dnsmsg.RR{}, fmt.Errorf("bad TXT string %s: %w", q, err)
			}
			strs[i] = s
		}
		rr.Data = dnsmsg.TXTData{Strings: strs}
	case dnsmsg.TypeSOA:
		if len(rd) != 7 {
			return dnsmsg.RR{}, fmt.Errorf("SOA needs 7 fields, got %d", len(rd))
		}
		var nums [5]uint32
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseUint(rd[2+i], 10, 32)
			if err != nil {
				return dnsmsg.RR{}, fmt.Errorf("bad SOA field %q", rd[2+i])
			}
			nums[i] = uint32(v)
		}
		rr.Data = dnsmsg.SOAData{MName: rd[0], RName: rd[1],
			Serial: nums[0], Refresh: nums[1], Retry: nums[2], Expire: nums[3], Minimum: nums[4]}
	case dnsmsg.TypeTLSA:
		if len(rd) != 4 {
			return dnsmsg.RR{}, fmt.Errorf("TLSA needs 4 fields, got %d", len(rd))
		}
		var nums [3]uint8
		for i := 0; i < 3; i++ {
			v, err := strconv.ParseUint(rd[i], 10, 8)
			if err != nil {
				return dnsmsg.RR{}, fmt.Errorf("bad TLSA field %q", rd[i])
			}
			nums[i] = uint8(v)
		}
		cert, err := parseHex(rd[3])
		if err != nil {
			return dnsmsg.RR{}, fmt.Errorf("bad TLSA cert data: %w", err)
		}
		rr.Data = dnsmsg.TLSAData{Usage: nums[0], Selector: nums[1], MatchingType: nums[2], CertData: cert}
	case dnsmsg.TypeDNSKEY:
		if len(rd) != 4 {
			return dnsmsg.RR{}, fmt.Errorf("DNSKEY needs 4 fields, got %d", len(rd))
		}
		flags, err1 := strconv.ParseUint(rd[0], 10, 16)
		proto, err2 := strconv.ParseUint(rd[1], 10, 8)
		alg, err3 := strconv.ParseUint(rd[2], 10, 8)
		key, err4 := base64.StdEncoding.DecodeString(rd[3])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return dnsmsg.RR{}, fmt.Errorf("bad DNSKEY fields")
		}
		rr.Data = dnsmsg.DNSKEYData{Flags: uint16(flags), Protocol: uint8(proto),
			Algorithm: uint8(alg), PublicKey: key}
	case dnsmsg.TypeDS:
		if len(rd) != 4 {
			return dnsmsg.RR{}, fmt.Errorf("DS needs 4 fields, got %d", len(rd))
		}
		tag, err1 := strconv.ParseUint(rd[0], 10, 16)
		alg, err2 := strconv.ParseUint(rd[1], 10, 8)
		dt, err3 := strconv.ParseUint(rd[2], 10, 8)
		digest, err4 := parseHex(rd[3])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return dnsmsg.RR{}, fmt.Errorf("bad DS fields")
		}
		rr.Data = dnsmsg.DSData{KeyTag: uint16(tag), Algorithm: uint8(alg),
			DigestType: uint8(dt), Digest: digest}
	case dnsmsg.TypeRRSIG:
		if len(rd) != 9 {
			return dnsmsg.RR{}, fmt.Errorf("RRSIG needs 9 fields, got %d", len(rd))
		}
		var nums [7]uint64
		for i := 0; i < 7; i++ {
			v, err := strconv.ParseUint(rd[i], 10, 32)
			if err != nil {
				return dnsmsg.RR{}, fmt.Errorf("bad RRSIG field %q", rd[i])
			}
			nums[i] = v
		}
		sigBytes, err := base64.StdEncoding.DecodeString(rd[8])
		if err != nil {
			return dnsmsg.RR{}, fmt.Errorf("bad RRSIG signature: %w", err)
		}
		rr.Data = dnsmsg.RRSIGData{
			TypeCovered: dnsmsg.Type(nums[0]), Algorithm: uint8(nums[1]),
			Labels: uint8(nums[2]), OrigTTL: uint32(nums[3]),
			Expiration: uint32(nums[4]), Inception: uint32(nums[5]),
			KeyTag: uint16(nums[6]), SignerName: rd[7], Signature: sigBytes,
		}
	default:
		return dnsmsg.RR{}, fmt.Errorf("unsupported type %s in zone file", t)
	}
	return rr, nil
}

func parseHex(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("odd-length hex")
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(out); i++ {
		v, err := strconv.ParseUint(s[2*i:2*i+2], 16, 8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

// splitFields splits on whitespace but keeps double-quoted strings (with
// backslash escapes) as single fields including their quotes.
func splitFields(line string) []string {
	var fields []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		if line[i] == '"' {
			i++
			for i < len(line) {
				if line[i] == '\\' && i+1 < len(line) {
					i += 2
					continue
				}
				if line[i] == '"' {
					i++
					break
				}
				i++
			}
		} else {
			for i < len(line) && line[i] != ' ' && line[i] != '\t' {
				i++
			}
		}
		fields = append(fields, line[start:i])
	}
	return fields
}

// WriteTo serializes the zone in the text format understood by ParseFile.
func (z *Zone) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "$ORIGIN %s\n", z.origin)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, name := range z.Names() {
		for _, rr := range z.Records(name) {
			n, err := fmt.Fprintln(w, rr.String())
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}
