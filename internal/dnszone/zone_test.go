package dnszone

import (
	"bytes"
	"errors"
	"net/netip"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
)

func rrA(name, addr string) dnsmsg.RR {
	return dnsmsg.RR{Name: name, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.AData{Addr: netip.MustParseAddr(addr)}}
}

func rrTXT(name, value string) dnsmsg.RR {
	return dnsmsg.RR{Name: name, Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.NewTXT(value)}
}

func rrMX(name string, pref uint16, host string) dnsmsg.RR {
	return dnsmsg.RR{Name: name, Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.MXData{Preference: pref, Host: host}}
}

func rrCNAME(name, target string) dnsmsg.RR {
	return dnsmsg.RR{Name: name, Type: dnsmsg.TypeCNAME, Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.CNAMEData{Target: target}}
}

func TestLookupBasics(t *testing.T) {
	z := New("example.com")
	z.MustAdd(rrA("example.com", "192.0.2.1"))
	z.MustAdd(rrMX("example.com", 10, "mail.example.com"))
	z.MustAdd(rrTXT("_mta-sts.example.com", "v=STSv1; id=1"))

	res, err := z.Lookup("example.com", dnsmsg.TypeMX)
	if err != nil || res.RCode != dnsmsg.RCodeSuccess || len(res.Answers) != 1 {
		t.Fatalf("MX lookup: %+v err=%v", res, err)
	}

	// NODATA: name exists, type does not.
	res, err = z.Lookup("example.com", dnsmsg.TypeAAAA)
	if err != nil || res.RCode != dnsmsg.RCodeSuccess || len(res.Answers) != 0 || !res.NameExists {
		t.Fatalf("NODATA lookup: %+v err=%v", res, err)
	}

	// NXDOMAIN.
	res, err = z.Lookup("nope.example.com", dnsmsg.TypeA)
	if err != nil || res.RCode != dnsmsg.RCodeNXDomain {
		t.Fatalf("NXDOMAIN lookup: %+v err=%v", res, err)
	}

	// Outside zone.
	if _, err := z.Lookup("example.net", dnsmsg.TypeA); !errors.Is(err, ErrNotAuthoritative) {
		t.Fatalf("out-of-zone: err=%v", err)
	}
}

func TestEmptyNonTerminal(t *testing.T) {
	z := New("com")
	z.MustAdd(rrA("mail.corp.example.com", "192.0.2.9"))
	// corp.example.com has no records but has a descendant: NODATA, not NXDOMAIN.
	res, err := z.Lookup("corp.example.com", dnsmsg.TypeA)
	if err != nil || res.RCode != dnsmsg.RCodeSuccess || !res.NameExists {
		t.Fatalf("empty non-terminal: %+v err=%v", res, err)
	}
}

func TestCNAMEChasingInZone(t *testing.T) {
	z := New("example.com")
	z.MustAdd(rrCNAME("mta-sts.example.com", "web.example.com"))
	z.MustAdd(rrA("web.example.com", "192.0.2.5"))

	res, err := z.Lookup("mta-sts.example.com", dnsmsg.TypeA)
	if err != nil || len(res.Answers) != 2 {
		t.Fatalf("CNAME chase: %+v err=%v", res, err)
	}
	if res.Answers[0].Type != dnsmsg.TypeCNAME || res.Answers[1].Type != dnsmsg.TypeA {
		t.Errorf("answer order: %v then %v", res.Answers[0].Type, res.Answers[1].Type)
	}
}

func TestCNAMEOutOfZoneStops(t *testing.T) {
	z := New("example.com")
	z.MustAdd(rrCNAME("mta-sts.example.com", "mta-sts.provider.net"))
	res, err := z.Lookup("mta-sts.example.com", dnsmsg.TypeA)
	if err != nil || len(res.Answers) != 1 || res.Answers[0].Type != dnsmsg.TypeCNAME {
		t.Fatalf("out-of-zone CNAME: %+v err=%v", res, err)
	}
}

func TestCNAMELoopServFail(t *testing.T) {
	z := New("example.com")
	z.MustAdd(rrCNAME("a.example.com", "b.example.com"))
	z.MustAdd(rrCNAME("b.example.com", "a.example.com"))
	res, err := z.Lookup("a.example.com", dnsmsg.TypeA)
	if err != nil || res.RCode != dnsmsg.RCodeServFail {
		t.Fatalf("CNAME loop: %+v err=%v", res, err)
	}
}

func TestCNAMETypeLookupDoesNotChase(t *testing.T) {
	z := New("example.com")
	z.MustAdd(rrCNAME("a.example.com", "b.example.com"))
	z.MustAdd(rrA("b.example.com", "192.0.2.1"))
	res, err := z.Lookup("a.example.com", dnsmsg.TypeCNAME)
	if err != nil || len(res.Answers) != 1 || res.Answers[0].Type != dnsmsg.TypeCNAME {
		t.Fatalf("CNAME-type lookup: %+v err=%v", res, err)
	}
}

func TestCNAMEConflict(t *testing.T) {
	z := New("example.com")
	z.MustAdd(rrA("www.example.com", "192.0.2.1"))
	if err := z.Add(rrCNAME("www.example.com", "x.example.com")); !errors.Is(err, ErrCNAMEConflict) {
		t.Errorf("CNAME over A: err=%v", err)
	}
	z.MustAdd(rrCNAME("alias.example.com", "www.example.com"))
	if err := z.Add(rrA("alias.example.com", "192.0.2.2")); !errors.Is(err, ErrCNAMEConflict) {
		t.Errorf("A over CNAME: err=%v", err)
	}
}

func TestRemove(t *testing.T) {
	z := New("example.com")
	z.MustAdd(rrA("example.com", "192.0.2.1"))
	z.MustAdd(rrTXT("example.com", "hello"))
	z.Remove("example.com", dnsmsg.TypeTXT)
	res, _ := z.Lookup("example.com", dnsmsg.TypeTXT)
	if len(res.Answers) != 0 || !res.NameExists {
		t.Fatalf("after Remove TXT: %+v", res)
	}
	z.RemoveName("example.com")
	res, _ = z.Lookup("example.com", dnsmsg.TypeA)
	if res.RCode != dnsmsg.RCodeNXDomain {
		t.Fatalf("after RemoveName: %+v", res)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	z := New("Example.COM")
	z.MustAdd(rrA("WWW.Example.com", "192.0.2.1"))
	res, err := z.Lookup("www.EXAMPLE.COM", dnsmsg.TypeA)
	if err != nil || len(res.Answers) != 1 {
		t.Fatalf("case-insensitive lookup: %+v err=%v", res, err)
	}
}

func TestZoneFileRoundTrip(t *testing.T) {
	z := New("example.com")
	z.MustAdd(rrA("example.com", "192.0.2.1"))
	z.MustAdd(dnsmsg.RR{Name: "example.com", Type: dnsmsg.TypeAAAA, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.AAAAData{Addr: netip.MustParseAddr("2001:db8::7")}})
	z.MustAdd(rrMX("example.com", 10, "mail.example.com"))
	z.MustAdd(rrTXT("_mta-sts.example.com", `v=STSv1; id=20240431;`))
	z.MustAdd(rrCNAME("mta-sts.example.com", "mta-sts.provider.com"))
	z.MustAdd(dnsmsg.RR{Name: "example.com", Type: dnsmsg.TypeNS, Class: dnsmsg.ClassIN, TTL: 86400,
		Data: dnsmsg.NSData{Host: "ns1.example.com"}})
	z.MustAdd(dnsmsg.RR{Name: "example.com", Type: dnsmsg.TypeSOA, Class: dnsmsg.ClassIN, TTL: 900,
		Data: dnsmsg.SOAData{MName: "ns1.example.com", RName: "hostmaster.example.com",
			Serial: 1, Refresh: 2, Retry: 3, Expire: 4, Minimum: 5}})
	z.MustAdd(dnsmsg.RR{Name: "_25._tcp.mail.example.com", Type: dnsmsg.TypeTLSA, Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.TLSAData{Usage: 3, Selector: 1, MatchingType: 1, CertData: []byte{0xde, 0xad}}})

	var buf bytes.Buffer
	if _, err := z.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	z2, err := ParseFile(&buf, "")
	if err != nil {
		t.Fatalf("ParseFile: %v\nzone text:\n%s", err, buf.String())
	}
	if z2.Origin() != "example.com" {
		t.Errorf("origin = %q", z2.Origin())
	}
	if !reflect.DeepEqual(z.Names(), z2.Names()) {
		t.Errorf("names mismatch: %v vs %v", z.Names(), z2.Names())
	}
	for _, name := range z.Names() {
		a, b := z.Records(name), z2.Records(name)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("records at %s mismatch:\n%v\n%v", name, a, b)
		}
	}
}

func TestZoneFileTXTWithSemicolons(t *testing.T) {
	// TXT values contain "; " — the field splitter must keep quoted strings whole.
	in := "$ORIGIN example.com\n" +
		`_mta-sts.example.com 300 IN TXT "v=STSv1; id=20240431;"` + "\n"
	z, err := ParseFile(strings.NewReader(in), "")
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	res, _ := z.Lookup("_mta-sts.example.com", dnsmsg.TypeTXT)
	if len(res.Answers) != 1 {
		t.Fatalf("answers = %d", len(res.Answers))
	}
	got := res.Answers[0].Data.(dnsmsg.TXTData).Joined()
	if got != "v=STSv1; id=20240431;" {
		t.Errorf("TXT value = %q", got)
	}
}

func TestZoneFileErrors(t *testing.T) {
	cases := []string{
		"example.com 300 IN A 192.0.2.1\n",                          // record before $ORIGIN
		"$ORIGIN example.com\nexample.com 300 IN A not-an-ip\n",     // bad A
		"$ORIGIN example.com\nexample.com 300 IN A 2001:db8::1\n",   // v6 in A
		"$ORIGIN example.com\nexample.com xx IN A 192.0.2.1\n",      // bad TTL
		"$ORIGIN example.com\nexample.com 300 CH A 192.0.2.1\n",     // bad class
		"$ORIGIN example.com\nexample.com 300 IN BOGUS x\n",         // bad type
		"$ORIGIN example.com\nexample.com 300 IN MX mail\n",         // MX missing pref
		"$ORIGIN a.com\n$ORIGIN b.com\n",                            // duplicate origin
		"$ORIGIN example.com\nexample.net 300 IN A 192.0.2.1\n",     // out of zone
		"$ORIGIN example.com\nexample.com 300 IN TLSA 3 1 1 xyz!\n", // bad hex
		"",
	}
	for _, in := range cases {
		if _, err := ParseFile(strings.NewReader(in), ""); err == nil {
			t.Errorf("ParseFile accepted %q", in)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	z := New("example.com")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				name := string(rune('a'+i)) + ".example.com"
				_ = z.Add(rrA(name, "192.0.2.1"))
				_, _ = z.Lookup(name, dnsmsg.TypeA)
				z.Remove(name, dnsmsg.TypeA)
			}
		}(i)
	}
	wg.Wait()
}

func TestClone(t *testing.T) {
	z := New("example.com")
	z.MustAdd(rrA("example.com", "192.0.2.1"))
	c := z.Clone()
	z.MustAdd(rrA("new.example.com", "192.0.2.2"))
	if c.Len() != 1 || z.Len() != 2 {
		t.Errorf("clone not independent: clone=%d orig=%d", c.Len(), z.Len())
	}
	res, _ := c.Lookup("example.com", dnsmsg.TypeA)
	if len(res.Answers) != 1 {
		t.Error("clone lost records")
	}
}
