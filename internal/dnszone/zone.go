// Package dnszone provides in-memory DNS zone storage with authoritative
// lookup semantics (NXDOMAIN vs NODATA, CNAME ownership rules) and a simple
// zone-file text format. Zones are the unit the simulated registries (the
// paper's Verisign / PIR / Internetstiftelsen zone-file feeds) hand to the
// authoritative server and to the scanners.
package dnszone

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/strutil"
)

// ErrNotAuthoritative is returned when a zone is asked about a name outside
// its origin.
var ErrNotAuthoritative = errors.New("dnszone: name outside zone origin")

// ErrCNAMEConflict is returned when adding a record that would coexist with
// a CNAME at the same owner (RFC 1034 §3.6.2).
var ErrCNAMEConflict = errors.New("dnszone: CNAME cannot coexist with other data")

// Zone is a thread-safe collection of records under a single origin.
type Zone struct {
	origin string

	mu      sync.RWMutex
	records map[string]map[dnsmsg.Type][]dnsmsg.RR // canonical owner -> type -> RRset
}

// New creates an empty zone for the given origin (e.g. "com" or
// "example.com").
func New(origin string) *Zone {
	return &Zone{
		origin:  strutil.CanonicalName(origin),
		records: make(map[string]map[dnsmsg.Type][]dnsmsg.RR),
	}
}

// Origin returns the zone origin in canonical form.
func (z *Zone) Origin() string { return z.origin }

// contains reports whether name is at or below the zone origin.
func (z *Zone) contains(name string) bool {
	return strutil.HasSuffixFold(name, z.origin)
}

// Add inserts a record. The owner must be within the zone. Adding a CNAME
// alongside other data (or vice versa) fails.
func (z *Zone) Add(rr dnsmsg.RR) error {
	name := strutil.CanonicalName(rr.Name)
	if !z.contains(name) {
		return fmt.Errorf("%w: %s not under %s", ErrNotAuthoritative, name, z.origin)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	byType := z.records[name]
	if byType == nil {
		byType = make(map[dnsmsg.Type][]dnsmsg.RR)
		z.records[name] = byType
	}
	if rr.Type == dnsmsg.TypeCNAME {
		for t := range byType {
			if t != dnsmsg.TypeCNAME {
				return fmt.Errorf("%w: %s already has %s", ErrCNAMEConflict, name, t)
			}
		}
	} else if len(byType[dnsmsg.TypeCNAME]) > 0 {
		return fmt.Errorf("%w: %s already has CNAME", ErrCNAMEConflict, name)
	}
	rr.Name = name
	byType[rr.Type] = append(byType[rr.Type], rr)
	return nil
}

// MustAdd is Add for static test/zone construction; it panics on error.
func (z *Zone) MustAdd(rr dnsmsg.RR) {
	if err := z.Add(rr); err != nil {
		panic(err)
	}
}

// Remove deletes the RRset of the given type at name. Removing a type the
// name does not have is a no-op. With dnsmsg.TypeANY, all records at the
// name are removed.
func (z *Zone) Remove(name string, t dnsmsg.Type) {
	name = strutil.CanonicalName(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	byType := z.records[name]
	if byType == nil {
		return
	}
	if t == dnsmsg.TypeANY {
		delete(z.records, name)
		return
	}
	delete(byType, t)
	if len(byType) == 0 {
		delete(z.records, name)
	}
}

// RemoveName deletes every record at name.
func (z *Zone) RemoveName(name string) { z.Remove(name, dnsmsg.TypeANY) }

// Result is the outcome of an authoritative lookup.
type Result struct {
	RCode dnsmsg.RCode
	// Answers holds the matched RRset, preceded by any CNAMEs followed
	// during in-zone chasing.
	Answers []dnsmsg.RR
	// NameExists distinguishes NODATA (true, empty answers) from NXDOMAIN.
	NameExists bool
}

// maxCNAMEChain bounds in-zone CNAME chasing.
const maxCNAMEChain = 8

// Lookup resolves (name, type) within the zone, following CNAME chains that
// stay inside the zone. Names outside the zone return ErrNotAuthoritative.
func (z *Zone) Lookup(name string, t dnsmsg.Type) (Result, error) {
	name = strutil.CanonicalName(name)
	if !z.contains(name) {
		return Result{}, ErrNotAuthoritative
	}
	z.mu.RLock()
	defer z.mu.RUnlock()

	var res Result
	cur := name
	for depth := 0; depth <= maxCNAMEChain; depth++ {
		byType, ok := z.records[cur]
		if !ok {
			// An empty non-terminal (a name with records below it) must
			// yield NODATA, not NXDOMAIN.
			if depth == 0 && !z.hasDescendantLocked(cur) {
				res.RCode = dnsmsg.RCodeNXDomain
				return res, nil
			}
			res.NameExists = true
			return res, nil
		}
		res.NameExists = true
		if rrs := byType[t]; len(rrs) > 0 && t != dnsmsg.TypeCNAME {
			res.Answers = append(res.Answers, rrs...)
			return res, nil
		}
		if t == dnsmsg.TypeCNAME {
			res.Answers = append(res.Answers, byType[dnsmsg.TypeCNAME]...)
			return res, nil
		}
		if cn := byType[dnsmsg.TypeCNAME]; len(cn) > 0 {
			res.Answers = append(res.Answers, cn[0])
			target := strutil.CanonicalName(cn[0].Data.(dnsmsg.CNAMEData).Target)
			if !z.contains(target) {
				// Out-of-zone target: the caller's resolver restarts there.
				return res, nil
			}
			cur = target
			continue
		}
		// Name exists, no matching type, no CNAME: NODATA.
		return res, nil
	}
	// CNAME loop inside the zone.
	res.RCode = dnsmsg.RCodeServFail
	return res, nil
}

// hasDescendantLocked reports whether any stored name is strictly below name.
func (z *Zone) hasDescendantLocked(name string) bool {
	suffix := "." + name
	for owner := range z.records {
		if strings.HasSuffix(owner, suffix) {
			return true
		}
	}
	return false
}

// Names returns every owner name in the zone, sorted.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	names := make([]string, 0, len(z.records))
	for n := range z.records {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Records returns all records at name (all types), in type order.
func (z *Zone) Records(name string) []dnsmsg.RR {
	name = strutil.CanonicalName(name)
	z.mu.RLock()
	defer z.mu.RUnlock()
	byType := z.records[name]
	if byType == nil {
		return nil
	}
	types := make([]dnsmsg.Type, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	var out []dnsmsg.RR
	for _, t := range types {
		out = append(out, byType[t]...)
	}
	return out
}

// Len returns the total number of records in the zone.
func (z *Zone) Len() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	n := 0
	for _, byType := range z.records {
		for _, rrs := range byType {
			n += len(rrs)
		}
	}
	return n
}

// Clone returns a deep-enough copy of the zone (record slices are copied;
// RData values are immutable by convention). Used by the snapshot store.
func (z *Zone) Clone() *Zone {
	z.mu.RLock()
	defer z.mu.RUnlock()
	nz := New(z.origin)
	for name, byType := range z.records {
		nm := make(map[dnsmsg.Type][]dnsmsg.RR, len(byType))
		for t, rrs := range byType {
			nm[t] = append([]dnsmsg.RR(nil), rrs...)
		}
		nz.records[name] = nm
	}
	return nz
}
