package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// ImportPath is the package's import path ("github.com/.../internal/obs").
	ImportPath string
	// Dir is the absolute directory holding the package's sources.
	Dir string
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's per-expression facts.
	Info *types.Info
}

// Module is the whole loaded module: every package, sharing one FileSet.
type Module struct {
	// Path is the module path from go.mod.
	Path string
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Fset positions every file in Packages.
	Fset *token.FileSet
	// Packages are the module's packages sorted by import path.
	Packages []*Package
}

// loader type-checks module packages from source using only the
// standard library: module-internal imports are parsed and checked
// recursively, everything else goes through the go/importer source
// importer (which compiles stdlib packages from $GOROOT/src).
type loader struct {
	fset      *token.FileSet
	moduleDir string
	modPath   string
	std       types.Importer
	mu        sync.Mutex
	pkgs      map[string]*Package // by import path
	loading   map[string]bool     // import-cycle guard
}

func newLoader(moduleDir, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:      fset,
		moduleDir: moduleDir,
		modPath:   modPath,
		std:       importer.ForCompiler(fset, "source", nil),
		pkgs:      make(map[string]*Package),
		loading:   make(map[string]bool),
	}
}

// Import implements types.Importer over both module-internal and
// external (stdlib) import paths.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.loadModulePackage(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) loadModulePackage(path string) (*Package, error) {
	l.mu.Lock()
	if p, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return p, nil
	}
	if l.loading[path] {
		l.mu.Unlock()
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	l.mu.Unlock()

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	dir := filepath.Join(l.moduleDir, filepath.FromSlash(rel))
	p, err := l.checkDir(dir, path, false)

	l.mu.Lock()
	delete(l.loading, path)
	if err == nil {
		l.pkgs[path] = p
	}
	l.mu.Unlock()
	return p, err
}

// checkDir parses and type-checks the package in dir. Test files are
// included only when withTests is set (used by fixture loads; the
// module walk excludes them so conventions for production code are not
// diluted by test idioms).
func (l *loader) checkDir(dir, importPath string, withTests bool) (*Package, error) {
	pkgs, err := parser.ParseDir(l.fset, dir, func(fi os.FileInfo) bool {
		return withTests || !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	// A directory holds at most one non-test package (plus possibly an
	// external _test package, which the filter above already dropped
	// unless withTests; fixtures use a single package per dir).
	var astPkg *ast.Package
	for name, p := range pkgs {
		if strings.HasSuffix(name, "_test") && len(pkgs) > 1 {
			continue
		}
		astPkg = p
		break
	}
	if astPkg == nil {
		return nil, fmt.Errorf("no Go package in %s", dir)
	}
	names := make([]string, 0, len(astPkg.Files))
	for name := range astPkg.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		files = append(files, astPkg.Files[name])
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// ModulePath reads the module path out of dir/go.mod.
func ModulePath(dir string) (string, error) {
	b, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", dir)
}

// Load parses and type-checks every package under moduleDir (skipping
// testdata, hidden directories, and _test.go files) and returns them
// sorted by import path. It is the entry point the mtastslint driver
// and the self-check test share.
func Load(moduleDir string) (*Module, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := ModulePath(abs)
	if err != nil {
		return nil, err
	}
	l := newLoader(abs, modPath)

	var dirs []string
	err = filepath.Walk(abs, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			base := filepath.Base(p)
			if p != abs && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	m := &Module{Path: modPath, Dir: abs, Fset: l.fset}
	for _, dir := range dirs {
		rel, err := filepath.Rel(abs, dir)
		if err != nil {
			return nil, err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.loadModulePackage(ip)
		if err != nil {
			return nil, err
		}
		m.Packages = append(m.Packages, p)
	}
	sort.Slice(m.Packages, func(i, j int) bool {
		return m.Packages[i].ImportPath < m.Packages[j].ImportPath
	})
	return m, nil
}

// LoadFixture type-checks the single package in dir as if it had the
// given import path, including _test.go files. Module-internal imports
// inside the fixture resolve against moduleDir. Analyzer golden tests
// use this to lint small source fixtures under testdata.
func LoadFixture(moduleDir, dir, importPath string) (*Module, *Package, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, nil, err
	}
	modPath, err := ModulePath(abs)
	if err != nil {
		return nil, nil, err
	}
	l := newLoader(abs, modPath)
	p, err := l.checkDir(dir, importPath, true)
	if err != nil {
		return nil, nil, err
	}
	m := &Module{Path: modPath, Dir: abs, Fset: l.fset, Packages: []*Package{p}}
	return m, p, nil
}
