package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is the committed set of grandfathered findings. Entries are
// keyed by analyzer, file and message — not line — so edits elsewhere in
// a file do not resurrect a grandfathered site, while fixing the site
// (or moving it to another file) retires the entry.
//
// The workflow: `mtastslint -write-baseline` snapshots current findings;
// subsequent runs exit non-zero only on findings absent from the
// baseline. The goal state, which this repo is in, is an empty baseline.
type Baseline struct {
	// Findings are the grandfathered entries, sorted for stable diffs.
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry mirrors Finding minus the position-within-file fields.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

func (e BaselineEntry) key() string { return e.Analyzer + "\x00" + e.File + "\x00" + e.Message }

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, so fresh checkouts and new repos need no setup.
func LoadBaseline(path string) (*Baseline, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var bl Baseline
	if err := json.Unmarshal(b, &bl); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &bl, nil
}

// Filter splits findings into those not covered by the baseline (new —
// these fail the build) and those grandfathered by it. Each baseline
// entry absorbs any number of identical findings in its file.
func (bl *Baseline) Filter(findings []Finding) (fresh, grandfathered []Finding) {
	keys := make(map[string]bool, len(bl.Findings))
	for _, e := range bl.Findings {
		keys[e.key()] = true
	}
	for _, f := range findings {
		if keys[f.Key()] {
			grandfathered = append(grandfathered, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	return fresh, grandfathered
}

// WriteBaseline writes findings as a baseline file, deduplicated and
// sorted.
func WriteBaseline(path string, findings []Finding) error {
	seen := make(map[string]bool)
	bl := Baseline{Findings: []BaselineEntry{}}
	for _, f := range findings {
		e := BaselineEntry{Analyzer: f.Analyzer, File: f.File, Message: f.Message}
		if seen[e.key()] {
			continue
		}
		seen[e.key()] = true
		bl.Findings = append(bl.Findings, e)
	}
	sort.Slice(bl.Findings, func(i, j int) bool { return bl.Findings[i].key() < bl.Findings[j].key() })
	b, err := json.MarshalIndent(bl, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
