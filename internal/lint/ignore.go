package lint

import (
	"go/token"
	"strings"
)

// IgnorePrefix is the suppression-comment directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive suppresses the named analyzers (or every analyzer, for
// "*") on the directive's own line and on the line immediately below
// it, so it works both as a trailing comment and as a standalone
// comment above the offending statement. The reason is mandatory:
// grandfathered sites must say why.
const IgnorePrefix = "//lint:ignore "

// ignoreIndex maps file → line → analyzer names suppressed there
// ("*" suppresses all).
type ignoreIndex map[string]map[int][]string

func (ix ignoreIndex) suppressed(file string, line int, analyzer string) bool {
	for _, name := range ix[file][line] {
		if name == "*" || name == analyzer {
			return true
		}
	}
	return false
}

// buildIgnoreIndex scans the package's comments for suppression
// directives. Malformed directives (missing analyzer list or reason)
// suppress nothing.
func buildIgnoreIndex(fset *token.FileSet, pkg *Package) ignoreIndex {
	ix := make(ignoreIndex)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnorePrefix)
				if !ok {
					continue
				}
				names, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if names == "" || strings.TrimSpace(reason) == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := ix[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					ix[pos.Filename] = lines
				}
				for _, name := range strings.Split(names, ",") {
					lines[pos.Line] = append(lines[pos.Line], name)
					lines[pos.Line+1] = append(lines[pos.Line+1], name)
				}
			}
		}
	}
	return ix
}
