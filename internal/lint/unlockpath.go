package lint

import (
	"go/ast"
	"go/token"
)

// UnlockPath reports lock leaks: a sync.Mutex / sync.RWMutex acquired
// in a function must be released on every path out of it — by a
// matching Unlock before each return, or (preferred) by an immediate
// defer. An early return that skips the Unlock leaves every later
// caller of Lock parked forever; a panic between Lock and a
// non-deferred Unlock does the same through the unwinding. The walker
// also flags re-acquiring a write lock already held in the same
// function, which is a guaranteed self-deadlock (Go mutexes are not
// reentrant).
//
// The analysis is per-path: branch bodies are tracked independently,
// so `if x { mu.Unlock(); return }` is fine, and only the path that
// actually leaks is reported.
func UnlockPath() *Analyzer {
	a := &Analyzer{
		Name: "unlockpath",
		Doc:  "flags Lock() calls not released on every return/panic path (prefer defer Unlock)",
	}
	a.Run = func(pass *Pass) {
		hooks := lockHooks{}
		report := func(pos token.Pos, kind string, held []*heldLock) {
			for _, l := range held {
				verb := "Unlock"
				if l.read {
					verb = "RUnlock"
				}
				switch kind {
				case "return":
					pass.Reportf(pos, "return without releasing %s; add %s.%s() before returning or defer it at acquisition",
						l.expr, l.expr, verb)
				case "panic":
					pass.Reportf(pos, "panic with %s held and no deferred %s; waiters deadlock through the unwinding",
						l.expr, verb)
				case "end":
					pass.Reportf(pos, "function exits with %s still locked; release it or defer %s.%s() at acquisition",
						l.expr, l.expr, verb)
				}
			}
		}
		hooks.onExit = report
		hooks.onRelock = func(pos token.Pos, l *heldLock) {
			pass.Reportf(pos, "%s.Lock() while %s is already held in this function: guaranteed self-deadlock",
				l.expr, l.expr)
		}
		for _, file := range pass.Pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
					continue
				}
				walkLockFlow(pass.Pkg.Info, fd.Body, hooks)
			}
		}
	}
	return a
}
