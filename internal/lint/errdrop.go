package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errdropAllowedPkgs are packages whose error returns are convention-
// ally ignorable: fmt's writers report errors almost no caller can act
// on (and the project's CLIs print to stdout best-effort).
var errdropAllowedPkgs = map[string]bool{
	"fmt": true,
}

// errdropAllowedRecvs are receiver types whose Write-shaped methods are
// documented never to fail.
var errdropAllowedRecvs = map[string]bool{
	"*strings.Builder": true,
	"*bytes.Buffer":    true,
	"hash.Hash":        true,
}

// errdropDeferAllowed are method names whose errors are conventionally
// dropped in defer statements (the original error, not the cleanup
// error, is what the caller reports).
var errdropDeferAllowed = map[string]bool{
	"Close": true, "Flush": true, "Stop": true,
}

// errdropDeadlineSetters are net.Conn deadline methods: a failure means
// the socket is already dead, which the very next read or write
// surfaces with a better error.
var errdropDeadlineSetters = map[string]bool{
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// ErrDrop reports discarded error returns: calls used as bare
// statements, `_ =` assignments of error-yielding calls, and deferred
// or spawned error-returning calls — PR 1's silently-swallowed
// MX-lookup bug was exactly this defect class. fmt printers,
// never-failing writers (strings.Builder, bytes.Buffer, hash.Hash) and
// deferred Close/Flush/Stop are allowed; everything else needs handling
// or a //lint:ignore errdrop annotation.
func ErrDrop() *Analyzer {
	a := &Analyzer{
		Name: "errdrop",
		Doc:  "flags discarded error returns outside a small allowlist",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		pass.inspect(func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if errdropFlags(info, call, false) {
					pass.Reportf(call.Pos(), "error result of %s is discarded", funcName(calleeFunc(info, call)))
				}
			case *ast.DeferStmt:
				if errdropFlags(info, stmt.Call, true) {
					pass.Reportf(stmt.Call.Pos(), "error result of deferred %s is discarded", funcName(calleeFunc(info, stmt.Call)))
				}
			case *ast.GoStmt:
				if errdropFlags(info, stmt.Call, false) {
					pass.Reportf(stmt.Call.Pos(), "error result of go %s is discarded", funcName(calleeFunc(info, stmt.Call)))
				}
			case *ast.AssignStmt:
				if len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				errIdx := errorResultIndexes(info, call)
				if len(errIdx) == 0 || errdropAllowed(info, call, false) {
					return true
				}
				// Flag only when every error result lands in a blank
				// identifier; capturing any one of them counts as handling.
				if len(stmt.Lhs) == 1 && len(errIdx) >= 1 {
					if isBlank(stmt.Lhs[0]) {
						pass.Reportf(stmt.Pos(), "error result of %s is assigned to _", funcName(calleeFunc(info, call)))
					}
					return true
				}
				allBlank := true
				for _, i := range errIdx {
					if i < len(stmt.Lhs) && !isBlank(stmt.Lhs[i]) {
						allBlank = false
					}
				}
				if allBlank {
					pass.Reportf(stmt.Pos(), "error result of %s is assigned to _", funcName(calleeFunc(info, call)))
				}
			}
			return true
		})
	}
	return a
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// errdropFlags reports whether discarding every result of call drops an
// error that the allowlist does not excuse.
func errdropFlags(info *types.Info, call *ast.CallExpr, deferred bool) bool {
	return len(errorResultIndexes(info, call)) > 0 && !errdropAllowed(info, call, deferred)
}

func errdropAllowed(info *types.Info, call *ast.CallExpr, deferred bool) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		// Calls through function values have no stable identity to
		// allowlist; stay quiet rather than noisy.
		return true
	}
	if errdropAllowedPkgs[funcPkgPath(fn)] {
		return true
	}
	recv := recvTypeString(fn)
	if errdropAllowedRecvs[recv] {
		return true
	}
	// Methods promoted from embedded never-failing writers keep their
	// receiver spelling; a *bufio.Writer behind an interface does not.
	if strings.HasPrefix(recv, "*strings.") || strings.HasPrefix(recv, "*bytes.") {
		return true
	}
	if errdropDeadlineSetters[fn.Name()] && (strings.HasPrefix(recv, "net.") || strings.HasPrefix(recv, "*net.")) {
		return true
	}
	// hash.Hash writes never fail, but Write resolves to the embedded
	// io.Writer method; recognize the call by the receiver expression's
	// static type instead.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok {
			if named, ok := tv.Type.(*types.Named); ok {
				if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "hash" {
					return true
				}
			}
		}
	}
	if deferred && errdropDeferAllowed[fn.Name()] {
		return true
	}
	return false
}
