package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// want is one expectation parsed from a fixture's `// want "substring"`
// comment: the finding must land on that file and line, and its message
// must contain the substring.
type want struct {
	file   string // base name
	line   int
	substr string
}

const wantMarker = `// want "`

func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(b), "\n") {
			idx := strings.Index(line, wantMarker)
			if idx < 0 {
				continue
			}
			rest := line[idx+len(wantMarker):]
			end := strings.IndexByte(rest, '"')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want comment", e.Name(), i+1)
			}
			wants = append(wants, want{file: e.Name(), line: i + 1, substr: rest[:end]})
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}
	return wants
}

// lintFixture loads testdata/src/<fixture> under importPath, runs the
// analyzer, and diffs the findings against the fixture's want comments
// in both directions.
func lintFixture(t *testing.T, fixture, importPath string, a *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	m, _, err := LoadFixture("../..", dir, importPath)
	if err != nil {
		t.Fatalf("LoadFixture(%s): %v", dir, err)
	}
	findings := Run(m, []*Analyzer{a})
	wants := parseWants(t, dir)

	matched := make([]bool, len(findings))
	for _, w := range wants {
		found := false
		for i, f := range findings {
			if matched[i] || filepath.Base(f.File) != w.file || f.Line != w.line {
				continue
			}
			if !strings.Contains(f.Message, w.substr) {
				t.Errorf("%s:%d: got %q, want message containing %q", w.file, w.line, f.Message, w.substr)
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("%s:%d: no %s finding (want message containing %q)", w.file, w.line, a.Name, w.substr)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

func TestErrDropGolden(t *testing.T) {
	lintFixture(t, "errdrop", "github.com/netsecurelab/mtasts/internal/fixerrdrop", ErrDrop())
}

func TestCtxPassGolden(t *testing.T) {
	lintFixture(t, "ctxpass", "github.com/netsecurelab/mtasts/internal/fixctx", CtxPass())
}

func TestObsNamesGolden(t *testing.T) {
	lintFixture(t, "obsnames", "github.com/netsecurelab/mtasts/internal/fixobs",
		ObsNames(filepath.Join("testdata", "obsdocs.md")))
}

func TestDeadValueGolden(t *testing.T) {
	lintFixture(t, "deadvalue", "github.com/netsecurelab/mtasts/internal/fixdead", DeadValue())
}

func TestSleepLoopGolden(t *testing.T) {
	lintFixture(t, "sleeploop", "github.com/netsecurelab/mtasts/internal/fixsleep", SleepLoop())
}

func TestCodesGolden(t *testing.T) {
	lintFixture(t, "codes", "github.com/netsecurelab/mtasts/internal/smtpclient/fixcodes", Codes())
}

func TestPkgDocGolden(t *testing.T) {
	lintFixture(t, "pkgdoc", "github.com/netsecurelab/mtasts/internal/fixpkgdoc", PkgDoc())
}

func TestPkgDocMissingGolden(t *testing.T) {
	lintFixture(t, "pkgdocmissing", "github.com/netsecurelab/mtasts/internal/fixpkgdocmissing", PkgDoc())
}

// TestCodesScope pins the analyzer to the errtax-producing packages:
// the same fixture is quiet under any other import path.
func TestCodesScope(t *testing.T) {
	dir := filepath.Join("testdata", "src", "codes")
	for _, importPath := range []string{
		"github.com/netsecurelab/mtasts/internal/scanner/fixcodes", // consumer, not producer
		"github.com/netsecurelab/mtasts/cmd/fixcodes",
	} {
		m, _, err := LoadFixture("../..", dir, importPath)
		if err != nil {
			t.Fatalf("LoadFixture(%s): %v", importPath, err)
		}
		if findings := Run(m, []*Analyzer{Codes()}); len(findings) != 0 {
			t.Errorf("%s: want no findings outside producer packages, got %v", importPath, findings)
		}
	}
}

// TestCtxPassSkipsCommandsAndExperiments pins the analyzer's scope
// rules: the same source is quiet outside internal/ and in the
// experiments harness.
func TestCtxPassScope(t *testing.T) {
	dir := filepath.Join("testdata", "src", "ctxpass")
	for _, importPath := range []string{
		"github.com/netsecurelab/mtasts/cmd/fixctx", // not internal/
	} {
		m, _, err := LoadFixture("../..", dir, importPath)
		if err != nil {
			t.Fatalf("LoadFixture(%s): %v", importPath, err)
		}
		if findings := Run(m, []*Analyzer{CtxPass()}); len(findings) != 0 {
			t.Errorf("%s: want no findings outside internal/, got %v", importPath, findings)
		}
	}
	m, _, err := LoadFixture("../..", dir, "github.com/netsecurelab/mtasts/internal/experiments/fixctx")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(m, []*Analyzer{CtxPass()}) {
		if strings.Contains(f.Message, "context.Background") || strings.Contains(f.Message, "context.TODO") {
			t.Errorf("experiments package should mint root contexts freely, got %s", f)
		}
	}
}

func TestLockHoldGolden(t *testing.T) {
	lintFixture(t, "lockhold", "github.com/netsecurelab/mtasts/internal/fixlockhold", LockHold())
}

func TestUnlockPathGolden(t *testing.T) {
	lintFixture(t, "unlockpath", "github.com/netsecurelab/mtasts/internal/fixunlock", UnlockPath())
}

func TestGoroLeakGolden(t *testing.T) {
	lintFixture(t, "goroleak", "github.com/netsecurelab/mtasts/internal/fixgoroleak", GoroLeak())
}

func TestWGPairGolden(t *testing.T) {
	lintFixture(t, "wgpair", "github.com/netsecurelab/mtasts/internal/fixwgpair", WGPair())
}

// TestLockHoldScope pins the exemptions: commands are free to block
// under locks they own for process lifetime, and internal/store's
// mutex exists to serialize file I/O.
func TestLockHoldScope(t *testing.T) {
	dir := filepath.Join("testdata", "src", "lockhold")
	for _, importPath := range []string{
		"github.com/netsecurelab/mtasts/cmd/fixlockhold",            // not internal/
		"github.com/netsecurelab/mtasts/internal/store/fixlockhold", // store serializes I/O by design
	} {
		m, _, err := LoadFixture("../..", dir, importPath)
		if err != nil {
			t.Fatalf("LoadFixture(%s): %v", importPath, err)
		}
		if findings := Run(m, []*Analyzer{LockHold()}); len(findings) != 0 {
			t.Errorf("%s: want no findings in exempt package, got %v", importPath, findings)
		}
	}
}

// TestGoroLeakScope pins the exemptions: commands and the experiments
// harness own their process lifecycle.
func TestGoroLeakScope(t *testing.T) {
	dir := filepath.Join("testdata", "src", "goroleak")
	for _, importPath := range []string{
		"github.com/netsecurelab/mtasts/cmd/fixgoroleak",
		"github.com/netsecurelab/mtasts/internal/experiments/fixgoroleak",
	} {
		m, _, err := LoadFixture("../..", dir, importPath)
		if err != nil {
			t.Fatalf("LoadFixture(%s): %v", importPath, err)
		}
		if findings := Run(m, []*Analyzer{GoroLeak()}); len(findings) != 0 {
			t.Errorf("%s: want no findings in exempt package, got %v", importPath, findings)
		}
	}
}

func TestSleepLoopSkipsRetryPackage(t *testing.T) {
	dir := filepath.Join("testdata", "src", "sleeploop")
	m, _, err := LoadFixture("../..", dir, "github.com/netsecurelab/mtasts/internal/retry")
	if err != nil {
		t.Fatal(err)
	}
	if findings := Run(m, []*Analyzer{SleepLoop()}); len(findings) != 0 {
		t.Errorf("internal/retry implements the sanctioned wait; want no findings, got %v", findings)
	}
}
