package lint

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// The testdata mini-module holds exactly one finding (an errdrop in
// fixmod.go); the driver tests exercise reporting and the baseline
// round-trip against it.
const fixtureModule = "testdata/module"

func runDriver(t *testing.T, opts Options) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = Main(opts, &out, &errb)
	return code, out.String(), errb.String()
}

func TestDriverTextReport(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	code, out, errb := runDriver(t, Options{Dir: fixtureModule, BaselinePath: baseline})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb)
	}
	if !strings.Contains(out, "fixmod.go:11:2: error result of fixmod.fail is assigned to _ [errdrop]") {
		t.Errorf("unexpected text report:\n%s", out)
	}
	if !strings.Contains(errb, "1 finding(s)") {
		t.Errorf("summary missing from stderr: %s", errb)
	}
}

func TestDriverJSONAndBaselineRoundTrip(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")

	code, out, errb := runDriver(t, Options{Dir: fixtureModule, BaselinePath: baseline, JSON: true})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb)
	}
	var report struct {
		Findings      []Finding `json:"findings"`
		Grandfathered int       `json:"grandfathered"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(report.Findings) != 1 || report.Grandfathered != 0 {
		t.Fatalf("report = %+v, want 1 finding, 0 grandfathered", report)
	}
	f := report.Findings[0]
	if f.Analyzer != "errdrop" || f.File != "fixmod.go" || f.Line != 11 {
		t.Errorf("finding = %+v", f)
	}

	// Snapshot the baseline; the same run must now pass with the finding
	// grandfathered rather than fresh.
	code, _, errb = runDriver(t, Options{Dir: fixtureModule, BaselinePath: baseline, WriteBaseline: true})
	if code != 0 {
		t.Fatalf("write-baseline exit = %d; stderr: %s", code, errb)
	}
	if !strings.Contains(errb, "wrote 1 baseline entries") {
		t.Errorf("stderr: %s", errb)
	}
	code, out, _ = runDriver(t, Options{Dir: fixtureModule, BaselinePath: baseline, JSON: true})
	if code != 0 {
		t.Fatalf("exit code after baselining = %d, want 0", code)
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Findings) != 0 || report.Grandfathered != 1 {
		t.Errorf("report after baselining = %+v, want 0 findings, 1 grandfathered", report)
	}
}

func TestDriverOnlySelection(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	// deadvalue deliberately cedes dropped errors to errdrop, so
	// restricting to it runs the mini-module clean.
	code, out, errb := runDriver(t, Options{Dir: fixtureModule, BaselinePath: baseline, Only: []string{"deadvalue"}})
	if code != 0 || out != "" {
		t.Errorf("exit = %d, stdout = %q, stderr = %s", code, out, errb)
	}
	code, _, errb = runDriver(t, Options{Dir: fixtureModule, BaselinePath: baseline, Only: []string{"nonsense"}})
	if code != 2 || !strings.Contains(errb, `unknown analyzer "nonsense"`) {
		t.Errorf("exit = %d, stderr = %s", code, errb)
	}
}

func TestBaselineKeyIgnoresLine(t *testing.T) {
	bl := &Baseline{Findings: []BaselineEntry{{Analyzer: "errdrop", File: "a.go", Message: "m"}}}
	fresh, grandfathered := bl.Filter([]Finding{
		{Analyzer: "errdrop", File: "a.go", Line: 10, Message: "m"},
		{Analyzer: "errdrop", File: "a.go", Line: 99, Message: "m"}, // moved: still absorbed
		{Analyzer: "errdrop", File: "b.go", Line: 10, Message: "m"}, // other file: fresh
	})
	if len(grandfathered) != 2 || len(fresh) != 1 || fresh[0].File != "b.go" {
		t.Errorf("fresh = %v, grandfathered = %v", fresh, grandfathered)
	}
}

func TestLoadBaselineMissingFileIsEmpty(t *testing.T) {
	bl, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || len(bl.Findings) != 0 {
		t.Errorf("bl = %+v, err = %v", bl, err)
	}
}
