package lint

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// The testdata mini-module holds exactly two findings (an errdrop in
// fixmod.go, an unlockpath lock leak in fixmod2.go); the driver tests
// exercise reporting, -only selection and the baseline round-trip
// against them.
const fixtureModule = "testdata/module"

func runDriver(t *testing.T, opts Options) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = Main(opts, &out, &errb)
	return code, out.String(), errb.String()
}

func TestDriverTextReport(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	code, out, errb := runDriver(t, Options{Dir: fixtureModule, BaselinePath: baseline})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb)
	}
	if !strings.Contains(out, "fixmod.go:11:2: error result of fixmod.fail is assigned to _ [errdrop]") {
		t.Errorf("unexpected text report:\n%s", out)
	}
	if !strings.Contains(out, "fixmod2.go:13:3: return without releasing mu") {
		t.Errorf("unlockpath finding missing from text report:\n%s", out)
	}
	if !strings.Contains(errb, "2 finding(s)") {
		t.Errorf("summary missing from stderr: %s", errb)
	}
}

func TestDriverJSONAndBaselineRoundTrip(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")

	code, out, errb := runDriver(t, Options{Dir: fixtureModule, BaselinePath: baseline, JSON: true})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb)
	}
	var report struct {
		Findings      []Finding `json:"findings"`
		Grandfathered int       `json:"grandfathered"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(report.Findings) != 2 || report.Grandfathered != 0 {
		t.Fatalf("report = %+v, want 2 findings, 0 grandfathered", report)
	}
	f := report.Findings[0]
	if f.Analyzer != "errdrop" || f.File != "fixmod.go" || f.Line != 11 {
		t.Errorf("finding = %+v", f)
	}
	f = report.Findings[1]
	if f.Analyzer != "unlockpath" || f.File != "fixmod2.go" || f.Line != 13 {
		t.Errorf("finding = %+v", f)
	}

	// Snapshot the baseline; the same run must now pass with the findings
	// grandfathered rather than fresh.
	code, _, errb = runDriver(t, Options{Dir: fixtureModule, BaselinePath: baseline, WriteBaseline: true})
	if code != 0 {
		t.Fatalf("write-baseline exit = %d; stderr: %s", code, errb)
	}
	if !strings.Contains(errb, "wrote 2 baseline entries") {
		t.Errorf("stderr: %s", errb)
	}
	code, out, _ = runDriver(t, Options{Dir: fixtureModule, BaselinePath: baseline, JSON: true})
	if code != 0 {
		t.Fatalf("exit code after baselining = %d, want 0", code)
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Findings) != 0 || report.Grandfathered != 2 {
		t.Errorf("report after baselining = %+v, want 0 findings, 2 grandfathered", report)
	}
}

func TestDriverOnlySelection(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	// deadvalue deliberately cedes dropped errors to errdrop, so
	// restricting to it runs the mini-module clean.
	code, out, errb := runDriver(t, Options{Dir: fixtureModule, BaselinePath: baseline, Only: []string{"deadvalue"}})
	if code != 0 || out != "" {
		t.Errorf("exit = %d, stdout = %q, stderr = %s", code, out, errb)
	}
	// Restricting to one analyzer selects only its finding.
	code, out, errb = runDriver(t, Options{Dir: fixtureModule, BaselinePath: baseline, Only: []string{"errdrop"}})
	if code != 1 || !strings.Contains(out, "fixmod.go:11") || strings.Contains(out, "fixmod2.go") {
		t.Errorf("-only errdrop: exit = %d, stdout = %q, stderr = %s", code, out, errb)
	}
	code, out, errb = runDriver(t, Options{Dir: fixtureModule, BaselinePath: baseline, Only: []string{"unlockpath"}})
	if code != 1 || !strings.Contains(out, "fixmod2.go:13") || strings.Contains(out, "fixmod.go:11") {
		t.Errorf("-only unlockpath: exit = %d, stdout = %q, stderr = %s", code, out, errb)
	}
	// The whole concurrency pack is selectable by name; in this
	// non-internal mini-module only unlockpath (module-wide) fires.
	code, out, errb = runDriver(t, Options{Dir: fixtureModule, BaselinePath: baseline,
		Only: []string{"lockhold", "goroleak", "unlockpath", "wgpair"}})
	if code != 1 || !strings.Contains(out, "return without releasing mu") || !strings.Contains(errb, "1 finding(s)") {
		t.Errorf("-only concurrency pack: exit = %d, stdout = %q, stderr = %s", code, out, errb)
	}
	code, _, errb = runDriver(t, Options{Dir: fixtureModule, BaselinePath: baseline, Only: []string{"nonsense"}})
	if code != 2 || !strings.Contains(errb, `unknown analyzer "nonsense"`) {
		t.Errorf("exit = %d, stderr = %s", code, errb)
	}
}

func TestBaselineKeyIgnoresLine(t *testing.T) {
	bl := &Baseline{Findings: []BaselineEntry{{Analyzer: "errdrop", File: "a.go", Message: "m"}}}
	fresh, grandfathered := bl.Filter([]Finding{
		{Analyzer: "errdrop", File: "a.go", Line: 10, Message: "m"},
		{Analyzer: "errdrop", File: "a.go", Line: 99, Message: "m"}, // moved: still absorbed
		{Analyzer: "errdrop", File: "b.go", Line: 10, Message: "m"}, // other file: fresh
	})
	if len(grandfathered) != 2 || len(fresh) != 1 || fresh[0].File != "b.go" {
		t.Errorf("fresh = %v, grandfathered = %v", fresh, grandfathered)
	}
}

func TestLoadBaselineMissingFileIsEmpty(t *testing.T) {
	bl, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || len(bl.Findings) != 0 {
		t.Errorf("bl = %+v, err = %v", bl, err)
	}
}
