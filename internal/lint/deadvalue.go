package lint

import (
	"go/ast"
	"go/types"
)

// deadvaluePurePkgs are packages whose exported functions compute
// values without side effects: discarding their result discards the
// whole call.
var deadvaluePurePkgs = map[string]bool{
	"strings": true, "strconv": true, "path": true,
	"unicode": true, "unicode/utf8": true,
}

// deadvaluePureMethods lists pure methods by receiver type.
var deadvaluePureMethods = map[string]map[string]bool{
	"net/http.Header": {"Get": true, "Values": true, "Clone": true},
	"net/url.Values":  {"Get": true, "Encode": true},
}

// DeadValue reports computed-and-discarded expressions: `_ = expr`
// assignments (and pure calls used as bare statements) whose right side
// has no side effects, so the statement does nothing at all. The
// `_ = resp.Header.Get("Content-Type")` this PR removed from
// internal/mtasts/fetch.go is the motivating instance — code that looks
// like a check but checks nothing. Type assertions (`_ = x.(T)`) are
// exempt: the single-value form panics on mismatch, which is the point.
func DeadValue() *Analyzer {
	a := &Analyzer{
		Name: "deadvalue",
		Doc:  "flags side-effect-free expressions whose value is discarded",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		pass.inspect(func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 || !isBlank(stmt.Lhs[0]) {
					return true
				}
				rhs := ast.Unparen(stmt.Rhs[0])
				if call, ok := rhs.(*ast.CallExpr); ok && len(errorResultIndexes(info, call)) > 0 {
					return true // dropping an error is errdrop's finding, not a dead value
				}
				if sideEffectFree(info, rhs) {
					pass.Reportf(stmt.Pos(), "value is computed and discarded (dead `_ =` assignment)")
				}
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok || len(errorResultIndexes(info, call)) > 0 {
					return true
				}
				if callResults(info, call) == nil {
					return true // conversion or builtin; not statement-shaped anyway
				}
				if sideEffectFree(info, call) {
					pass.Reportf(stmt.Pos(), "result of %s is discarded and the call has no side effects", funcName(calleeFunc(info, call)))
				}
			}
			return true
		})
	}
	return a
}

// sideEffectFree conservatively reports whether evaluating e cannot
// change program state: identifiers, literals, field selections, pure
// arithmetic, conversions, and calls into the pure allowlist. Anything
// it does not recognize — channel ops, type assertions, unknown calls —
// counts as effectful.
func sideEffectFree(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return sideEffectFree(info, e.X)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			switch sel.Kind() {
			case types.FieldVal, types.MethodVal, types.MethodExpr:
				// Field read or method value (not a call).
				return sideEffectFree(info, e.X)
			}
			return false
		}
		return true // qualified identifier pkg.Name
	case *ast.StarExpr:
		return sideEffectFree(info, e.X)
	case *ast.UnaryExpr:
		return e.Op.String() != "<-" && sideEffectFree(info, e.X)
	case *ast.BinaryExpr:
		return sideEffectFree(info, e.X) && sideEffectFree(info, e.Y)
	case *ast.IndexExpr:
		return sideEffectFree(info, e.X) && sideEffectFree(info, e.Index)
	case *ast.SliceExpr:
		for _, idx := range []ast.Expr{e.X, e.Low, e.High, e.Max} {
			if idx != nil && !sideEffectFree(info, idx) {
				return false
			}
		}
		return true
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if !sideEffectFree(info, elt) {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion: pure if the operand is.
			return len(e.Args) == 1 && sideEffectFree(info, e.Args[0])
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				if b.Name() == "len" || b.Name() == "cap" {
					return len(e.Args) == 1 && sideEffectFree(info, e.Args[0])
				}
				return false
			}
		}
		fn := calleeFunc(info, e)
		if fn == nil {
			return false
		}
		pure := false
		if recv := recvTypeString(fn); recv != "" {
			pure = deadvaluePureMethods[recv][fn.Name()]
		} else {
			pure = deadvaluePurePkgs[funcPkgPath(fn)]
		}
		if !pure {
			return false
		}
		for _, arg := range e.Args {
			if !sideEffectFree(info, arg) {
				return false
			}
		}
		return true
	}
	return false
}
