package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockflow is the shared machinery of the concurrency analyzers
// (lockhold, unlockpath): a statement-order walker that tracks which
// sync.Mutex / sync.RWMutex locks are held at each point of a function
// body, and a classifier for operations that can block the holder.
//
// The analysis is intra-procedural and deliberately conservative about
// control flow: branch bodies are walked with a copy of the held set,
// and after a branch the lock is considered still held only if every
// non-terminating path kept it. Function literals are independent
// scopes — they run on their own goroutine or at defer time, not at
// their definition point — so each is walked with a fresh held set.

// heldLock is one lock the walker currently believes is held.
type heldLock struct {
	key      string    // identity: receiver expression text + lock mode
	expr     string    // receiver expression as written ("c.mu")
	read     bool      // RLock rather than Lock
	pos      token.Pos // the acquiring call
	deferred bool      // a matching defer Unlock/RUnlock was seen
}

// lockState maps heldLock.key to the lock. States are small (almost
// always 0 or 1 entries), so copying per branch is cheap.
type lockState map[string]*heldLock

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		cp := *v
		out[k] = &cp
	}
	return out
}

// merge keeps only locks held on both non-terminating paths; a lock is
// deferred-released if either path saw the defer.
func mergeLockStates(a, b lockState) lockState {
	out := make(lockState)
	for k, la := range a {
		if lb, ok := b[k]; ok {
			cp := *la
			cp.deferred = la.deferred || lb.deferred
			out[k] = &cp
		}
	}
	return out
}

// undeferred returns the held locks with no deferred release, in
// acquisition order (by position).
func undeferred(st lockState) []*heldLock {
	var out []*heldLock
	for _, l := range st {
		if !l.deferred {
			out = append(out, l)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].pos < out[j-1].pos; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// lockCall decodes call as a sync lock-discipline method — Lock, RLock,
// Unlock, RUnlock on a sync.Mutex, sync.RWMutex, sync.RWMutex.RLocker
// or sync.Locker — returning the receiver expression and method name.
func lockCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn := calleeFunc(info, call)
	if fn == nil || funcPkgPath(fn) != "sync" {
		return nil, "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return sel.X, fn.Name(), true
	}
	return nil, "", false
}

// lockKeyFor renders the identity of a lock receiver. Read and write
// halves of an RWMutex are tracked separately so an RLock answered by
// Unlock (or vice versa) does not silently balance.
func lockKeyFor(recv ast.Expr, read bool) string {
	key := types.ExprString(recv)
	if read {
		key += "\x00r"
	}
	return key
}

// lockHooks receives the walker's observations.
type lockHooks struct {
	// onExit fires at a return, a panic call, or the end of the body
	// while locks without a deferred release are held. kind is "return",
	// "panic" or "end".
	onExit func(pos token.Pos, kind string, held []*heldLock)
	// onBlocking fires for a potentially blocking operation executed
	// while any lock is held. desc names the operation.
	onBlocking func(pos token.Pos, desc string, held []*heldLock)
	// onRelock fires when a write lock is acquired while the walker
	// already believes it is held (self-deadlock).
	onRelock func(pos token.Pos, l *heldLock)
	// blockingCall classifies a call as blocking (non-empty description)
	// or not; nil disables call classification.
	blockingCall func(call *ast.CallExpr) string
}

// lockWalker walks one function body.
type lockWalker struct {
	info  *types.Info
	hooks lockHooks
	// nested collects function literals encountered during the walk;
	// the caller re-walks each with a fresh state.
	nested []*ast.FuncLit
}

// walkBody analyzes one function or function-literal body.
func walkLockFlow(info *types.Info, body *ast.BlockStmt, hooks lockHooks) {
	w := &lockWalker{info: info, hooks: hooks}
	st, terminated := w.walkStmts(body.List, make(lockState))
	if !terminated {
		if held := undeferred(st); len(held) > 0 && hooks.onExit != nil {
			hooks.onExit(body.Rbrace, "end", held)
		}
	}
	for i := 0; i < len(w.nested); i++ {
		inner := &lockWalker{info: info, hooks: hooks}
		ist, iterm := inner.walkStmts(w.nested[i].Body.List, make(lockState))
		if !iterm {
			if held := undeferred(ist); len(held) > 0 && hooks.onExit != nil {
				hooks.onExit(w.nested[i].Body.Rbrace, "end", held)
			}
		}
		w.nested = append(w.nested, inner.nested...)
	}
}

// walkStmts processes stmts in order against st, returning the state
// after the last statement and whether every path through the list
// terminates (returns or panics).
func (w *lockWalker) walkStmts(stmts []ast.Stmt, st lockState) (lockState, bool) {
	for _, stmt := range stmts {
		var terminated bool
		st, terminated = w.walkStmt(stmt, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, st lockState) (lockState, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, method, ok := lockCall(w.info, call); ok {
				return w.applyLockCall(st, call, recv, method), false
			}
			if isPanicCall(w.info, call) {
				w.scanBlocking(s, st)
				if held := undeferred(st); len(held) > 0 && w.hooks.onExit != nil {
					w.hooks.onExit(call.Pos(), "panic", held)
				}
				return st, true
			}
		}
		w.scanBlocking(s, st)
		return st, false
	case *ast.DeferStmt:
		if recv, method, ok := lockCall(w.info, s.Call); ok && (method == "Unlock" || method == "RUnlock") {
			key := lockKeyFor(recv, method == "RUnlock")
			if l, held := st[key]; held {
				l.deferred = true
			}
		}
		w.collectFuncLits(s.Call)
		return st, false
	case *ast.GoStmt:
		w.collectFuncLits(s.Call)
		return st, false
	case *ast.ReturnStmt:
		w.scanBlocking(s, st)
		if held := undeferred(st); len(held) > 0 && w.hooks.onExit != nil {
			w.hooks.onExit(s.Pos(), "return", held)
		}
		return st, true
	case *ast.SendStmt:
		if len(st) > 0 && w.hooks.onBlocking != nil {
			w.hooks.onBlocking(s.Arrow, "channel send", undeferredOrAll(st))
		}
		w.scanBlocking(s.Value, st)
		return st, false
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		w.scanBlocking(s.Cond, st)
		thenSt, thenTerm := w.walkStmts(s.Body.List, st.clone())
		elseSt, elseTerm := st.clone(), false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseSt, elseTerm = w.walkStmts(e.List, st.clone())
		case ast.Stmt:
			elseSt, elseTerm = w.walkStmt(e, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return mergeLockStates(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanBlocking(s.Cond, st)
		}
		bodySt, _ := w.walkStmts(s.Body.List, st.clone())
		return mergeLockStates(st, bodySt), false
	case *ast.RangeStmt:
		if len(st) > 0 && w.hooks.onBlocking != nil {
			if tv, ok := w.info.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					w.hooks.onBlocking(s.For, "range over a channel", undeferredOrAll(st))
				}
			}
		}
		w.scanBlocking(s.X, st)
		bodySt, _ := w.walkStmts(s.Body.List, st.clone())
		return mergeLockStates(st, bodySt), false
	case *ast.SelectStmt:
		blocking := true
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				blocking = false // has a default: non-blocking poll
			}
		}
		if blocking && len(st) > 0 && w.hooks.onBlocking != nil {
			w.hooks.onBlocking(s.Select, "blocking select", undeferredOrAll(st))
		}
		// Each comm clause proceeds from the pre-select state.
		merged, allTerm := lockState(nil), len(s.Body.List) > 0
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			caseSt, caseTerm := w.walkStmts(cc.Body, st.clone())
			if caseTerm {
				continue
			}
			allTerm = false
			if merged == nil {
				merged = caseSt
			} else {
				merged = mergeLockStates(merged, caseSt)
			}
		}
		if allTerm {
			return st, true
		}
		if merged == nil {
			merged = st
		}
		return merged, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanBlocking(s.Tag, st)
		}
		return w.walkCaseBodies(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		return w.walkCaseBodies(s.Body, st)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt:
		w.scanBlocking(s, st)
		return st, false
	default:
		return st, false
	}
}

// walkCaseBodies merges the case clauses of a switch. A switch without
// a default may fall through entirely, so the pre-switch state is one
// of the merged paths then.
func (w *lockWalker) walkCaseBodies(body *ast.BlockStmt, st lockState) (lockState, bool) {
	hasDefault := false
	merged, allTerm := lockState(nil), true
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.scanBlocking(e, st)
		}
		caseSt, caseTerm := w.walkStmts(cc.Body, st.clone())
		if caseTerm {
			continue
		}
		allTerm = false
		if merged == nil {
			merged = caseSt
		} else {
			merged = mergeLockStates(merged, caseSt)
		}
	}
	if allTerm && hasDefault && len(body.List) > 0 {
		return st, true
	}
	if merged == nil {
		merged = st
	}
	if !hasDefault {
		merged = mergeLockStates(merged, st)
	}
	return merged, false
}

// applyLockCall updates the state for a Lock/RLock/Unlock/RUnlock call.
func (w *lockWalker) applyLockCall(st lockState, call *ast.CallExpr, recv ast.Expr, method string) lockState {
	read := method == "RLock" || method == "RUnlock"
	key := lockKeyFor(recv, read)
	switch method {
	case "Lock", "RLock":
		if prev, held := st[key]; held && !read && w.hooks.onRelock != nil {
			w.hooks.onRelock(call.Pos(), prev)
		}
		st[key] = &heldLock{key: key, expr: types.ExprString(recv), read: read, pos: call.Pos()}
	case "Unlock", "RUnlock":
		delete(st, key)
	}
	return st
}

// scanBlocking inspects the expressions of a simple statement (or a
// bare expression) for operations that can block while locks are held.
// Function literals are skipped — they do not run at definition — and
// are queued for an independent walk.
func (w *lockWalker) scanBlocking(node ast.Node, st lockState) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.nested = append(w.nested, n)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(st) > 0 && w.hooks.onBlocking != nil {
				w.hooks.onBlocking(n.OpPos, "channel receive", undeferredOrAll(st))
			}
		case *ast.SendStmt:
			if len(st) > 0 && w.hooks.onBlocking != nil {
				w.hooks.onBlocking(n.Arrow, "channel send", undeferredOrAll(st))
			}
		case *ast.CallExpr:
			if _, _, ok := lockCall(w.info, n); ok {
				return true // lock discipline itself is not a blocking op here
			}
			if len(st) == 0 || w.hooks.blockingCall == nil || w.hooks.onBlocking == nil {
				return true
			}
			if desc := w.hooks.blockingCall(n); desc != "" {
				w.hooks.onBlocking(n.Pos(), desc, undeferredOrAll(st))
			}
		}
		return true
	})
}

// collectFuncLits queues literal bodies reachable from a call (defer /
// go statements) for an independent walk.
func (w *lockWalker) collectFuncLits(call *ast.CallExpr) {
	ast.Inspect(call, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.nested = append(w.nested, lit)
			return false
		}
		return true
	})
}

// undeferredOrAll prefers locks without a deferred release for the
// report, but a blocking op under a defer-released lock still blocks
// other goroutines, so fall back to everything held.
func undeferredOrAll(st lockState) []*heldLock {
	if out := undeferred(st); len(out) > 0 {
		return out
	}
	out := make([]*heldLock, 0, len(st))
	for _, l := range st {
		out = append(out, l)
	}
	return out
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// ---- blocking-call classification (lockhold) ----

// blockingNetFuncs are stdlib networking entry points that block on the
// wire; keyed by package path then function/method name.
var blockingNetFuncs = map[string]map[string]bool{
	"net": {
		"Dial": true, "DialContext": true, "DialTimeout": true, "DialUDP": true, "DialTCP": true,
		"Listen": true, "ListenTCP": true, "ListenUDP": true, "ListenPacket": true,
		"Accept": true, "AcceptTCP": true,
		"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
		"ReadFromUDP": true, "WriteToUDP": true,
		"LookupHost": true, "LookupIP": true, "LookupMX": true, "LookupTXT": true, "LookupCNAME": true,
	},
	"net/http": {
		"Get": true, "Post": true, "Head": true, "PostForm": true, "Do": true,
		"Serve": true, "ListenAndServe": true, "ListenAndServeTLS": true, "Shutdown": true,
	},
	"crypto/tls": {
		"Dial": true, "DialWithDialer": true, "Handshake": true, "HandshakeContext": true,
		"Read": true, "Write": true,
	},
	"net/smtp": {
		"Dial": true, "SendMail": true,
	},
}

// classifyBlockingCall names the way a call can block while a lock is
// held, or returns "" for calls considered non-blocking. summaries
// resolves same-package callees transitively (nil disables that).
func classifyBlockingCall(pass *Pass, call *ast.CallExpr, summaries *blockingSummaries) string {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil {
		return ""
	}
	pkgPath := funcPkgPath(fn)
	name := fn.Name()
	switch {
	case pkgPath == "time" && name == "Sleep" && recvTypeString(fn) == "":
		return "time.Sleep"
	case pkgPath == "sync" && name == "Wait":
		return funcName(fn) // WaitGroup.Wait / Cond.Wait
	case strings.HasSuffix(pkgPath, "/internal/sf") && name == "Do":
		return funcName(fn) + " (singleflight join)"
	case strings.HasSuffix(pkgPath, "/internal/store") && recvTypeString(fn) != "" && storeIOMethods[name]:
		return funcName(fn) + " (store I/O)"
	}
	if m, ok := blockingNetFuncs[pkgPath]; ok && m[name] {
		return funcName(fn) + " (network I/O)"
	}
	if summaries != nil && pkgPath == pass.Pkg.ImportPath {
		if desc := summaries.blocks(fn); desc != "" {
			return funcName(fn) + ", which reaches " + desc
		}
	}
	return ""
}

// storeIOMethods are the internal/store methods that hit the disk (or
// the lock serializing it).
var storeIOMethods = map[string]bool{
	"Put": true, "Get": true, "Delete": true, "Sync": true, "Scan": true, "Close": true,
}

// blockingSummaries lazily answers "does calling this same-package
// function reach a blocking operation?", following private helpers
// transitively with a cycle guard. Nested function literals are not
// followed (they run on their own schedule).
type blockingSummaries struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func]string
	stack map[*types.Func]bool
}

func newBlockingSummaries(pass *Pass) *blockingSummaries {
	s := &blockingSummaries{
		pass:  pass,
		decls: make(map[*types.Func]*ast.FuncDecl),
		memo:  make(map[*types.Func]string),
		stack: make(map[*types.Func]bool),
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					s.decls[obj] = fd
				}
			}
		}
	}
	return s
}

// blocks returns a description of the first blocking operation fn's
// body (transitively) reaches, or "".
func (s *blockingSummaries) blocks(fn *types.Func) string {
	if desc, ok := s.memo[fn]; ok {
		return desc
	}
	fd, ok := s.decls[fn]
	if !ok || s.stack[fn] {
		return ""
	}
	s.stack[fn] = true
	defer delete(s.stack, fn)
	desc := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			desc = "a channel send"
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				desc = "a channel receive"
			}
		case *ast.SelectStmt:
			blocking := true
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					blocking = false
				}
			}
			if blocking {
				desc = "a blocking select"
			}
		case *ast.RangeStmt:
			if tv, ok := s.pass.Pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					desc = "a channel range"
				}
			}
		case *ast.CallExpr:
			if _, _, ok := lockCall(s.pass.Pkg.Info, n); ok {
				return true
			}
			if d := classifyBlockingCall(s.pass, n, s); d != "" {
				desc = d
			}
		}
		return desc == ""
	})
	s.memo[fn] = desc
	return desc
}
