package lint

import (
	"go/ast"
	"go/types"
)

// WGPair enforces sync.WaitGroup discipline:
//
//   - Add belongs to the spawner, before the `go` statement. An Add
//     inside the spawned goroutine races with the spawner's Wait: Wait
//     can observe the counter at zero and return before the goroutine
//     has registered itself.
//   - Done must run via defer inside the goroutine, so a panic (or an
//     early return added later) cannot strand Wait forever.
//   - WaitGroups must be shared by pointer. A WaitGroup parameter
//     passed by value receives a copy; Done on the copy never reaches
//     the counter the spawner Waits on.
//
// The check applies module-wide to non-test code: WaitGroup misuse is
// equally fatal in commands and examples.
func WGPair() *Analyzer {
	a := &Analyzer{
		Name: "wgpair",
		Doc:  "enforces WaitGroup discipline: Add before spawn, Done via defer, no by-value WaitGroups",
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || pass.InTestFile(fd.Pos()) {
					continue
				}
				checkByValueWaitGroup(pass, fd.Type)
				if fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.FuncLit:
						checkByValueWaitGroup(pass, n.Type)
					case *ast.GoStmt:
						if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
							checkGoroutineBody(pass, lit.Body)
						}
					}
					return true
				})
			}
		}
	}
	return a
}

// checkGoroutineBody inspects one spawned literal for Add-inside and
// non-deferred Done. Nested literals are not the goroutine's own frame
// (they may be deferred helpers or further spawns), so they are
// skipped here and picked up by their own GoStmt if spawned.
func checkGoroutineBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var walk func(stmts []ast.Stmt)
	walk = func(stmts []ast.Stmt) {
		for _, stmt := range stmts {
			switch s := stmt.(type) {
			case *ast.DeferStmt:
				continue // defer wg.Done() is the sanctioned form
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					switch waitGroupMethod(info, call) {
					case "Add":
						pass.Reportf(call.Pos(), "wg.Add inside the goroutine races with Wait; call Add in the spawner before the go statement")
					case "Done":
						pass.Reportf(call.Pos(), "wg.Done not deferred; a panic or early return strands Wait — use defer wg.Done() first thing in the goroutine")
					}
				}
			}
			// Recurse into compound statements, skipping nested
			// function literals (separate frames).
			ast.Inspect(stmt, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.DeferStmt:
					return false
				case *ast.BlockStmt:
					if n != stmt {
						walk(n.List)
						return false
					}
				}
				return true
			})
		}
	}
	walk(body.List)
}

// waitGroupMethod returns "Add"/"Done"/"Wait" when call is that method
// on a sync.WaitGroup, else "".
func waitGroupMethod(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || funcPkgPath(fn) != "sync" {
		return ""
	}
	if recv := recvTypeString(fn); recv != "*sync.WaitGroup" {
		return ""
	}
	return fn.Name()
}

// checkByValueWaitGroup flags sync.WaitGroup (non-pointer) parameters.
func checkByValueWaitGroup(pass *Pass, ft *ast.FuncType) {
	if ft == nil || ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.Pkg.Info.Types[field.Type]
		if !ok {
			continue
		}
		if named, ok := tv.Type.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				pass.Reportf(field.Type.Pos(), "sync.WaitGroup passed by value; Done on the copy never reaches the spawner's Wait — pass *sync.WaitGroup")
			}
		}
	}
}
