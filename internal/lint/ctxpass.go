package lint

import (
	"go/ast"
	"strings"
)

// ctxpassBlocking maps package path → function names that block on the
// network without taking a context, plus the context-aware replacement
// to suggest. Library code under internal/ must use the replacement so
// cancellation and deadlines thread all the way to the socket.
var ctxpassBlocking = map[string]map[string]string{
	"net": {
		"Dial":        "(*net.Dialer).DialContext",
		"DialTimeout": "(*net.Dialer).DialContext",
		"LookupHost":  "(*net.Resolver).LookupHost",
		"LookupIP":    "(*net.Resolver).LookupIP",
		"LookupMX":    "(*net.Resolver).LookupMX",
		"LookupTXT":   "(*net.Resolver).LookupTXT",
		"LookupAddr":  "(*net.Resolver).LookupAddr",
		"LookupCNAME": "(*net.Resolver).LookupCNAME",
	},
	"crypto/tls": {
		"Dial":           "tls.Dialer.DialContext",
		"DialWithDialer": "tls.Dialer.DialContext",
	},
	"net/http": {
		"Get":      "http.NewRequestWithContext",
		"Head":     "http.NewRequestWithContext",
		"Post":     "http.NewRequestWithContext",
		"PostForm": "http.NewRequestWithContext",
	},
	"net/smtp": {
		"Dial": "a context-aware dialer plus smtp.NewClient",
	},
}

// ctxpassExemptPkgs are internal packages allowed to mint root
// contexts: experiment harnesses own their run lifecycle the way main
// functions do.
func ctxpassExempt(importPath string) bool {
	return strings.Contains(importPath, "/internal/experiments")
}

// CtxPass enforces the context-propagation convention: library code
// under internal/ that talks to the network must accept and thread a
// context.Context. It flags (a) context.Background()/context.TODO()
// outside main packages, tests and internal/experiments, and (b) calls
// to blocking net/DNS/HTTP/SMTP APIs that have context-aware
// equivalents.
func CtxPass() *Analyzer {
	a := &Analyzer{
		Name: "ctxpass",
		Doc:  "requires context.Context threading in internal/ network code",
	}
	a.Run = func(pass *Pass) {
		if !isInternalPkg(pass.Pkg.ImportPath) || pass.Pkg.Types.Name() == "main" {
			return
		}
		rootExempt := ctxpassExempt(pass.Pkg.ImportPath)
		info := pass.Pkg.Info
		pass.inspect(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			pkgPath := funcPkgPath(fn)
			if pkgPath == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") && recvTypeString(fn) == "" {
				if !rootExempt {
					pass.Reportf(call.Pos(), "context.%s() in library code; accept a context.Context from the caller", fn.Name())
				}
				return true
			}
			if repl, ok := ctxpassBlocking[pkgPath][fn.Name()]; ok && recvTypeString(fn) == "" {
				pass.Reportf(call.Pos(), "%s.%s blocks without a context; use %s", fn.Pkg().Name(), fn.Name(), repl)
			}
			return true
		})
	}
	return a
}
