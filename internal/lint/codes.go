package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// codesScope lists the errtax-producing packages: every error these
// packages hand across their public surface should carry a taxonomy
// code (docs/ERRORS.md), either by being an errtax sentinel or by
// wrapping one with %w. Path-segment suffixes of the import path.
var codesScope = []string{
	"internal/resolver",
	"internal/mtasts",
	"internal/smtpclient",
	"internal/dane",
}

func codesApplies(importPath string) bool {
	for _, s := range codesScope {
		if importPath == s || strings.HasSuffix(importPath, "/"+s) ||
			strings.Contains(importPath, "/"+s+"/") {
			return true
		}
	}
	return false
}

// Codes reports untyped error constructions escaping the
// errtax-producing packages (resolver, mtasts, smtpclient, dane):
// package-level errors.New sentinels, and return statements building
// their error with errors.New or a fmt.Errorf that wraps nothing — in
// both cases the caller gets an error with no taxonomy code, which the
// scanner can only classify by string matching. Use an errtax sentinel
// (errtax.New), wrap one with fmt.Errorf("...: %w", ErrSentinel), or
// annotate deliberate exceptions with //lint:ignore codes <reason>
// (ErrNoRecord and ErrBadGreeting are the precedents; both say why).
func Codes() *Analyzer {
	a := &Analyzer{
		Name: "codes",
		Doc:  "requires errtax codes on errors leaving producer packages",
	}
	a.Run = func(pass *Pass) {
		if !codesApplies(pass.Pkg.ImportPath) {
			return
		}
		info := pass.Pkg.Info
		pass.inspect(func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				if pass.InTestFile(node.Pos()) {
					return false
				}
			case *ast.GenDecl:
				// Package-level sentinels: var ErrX = errors.New("...").
				if node.Tok != token.VAR || pass.InTestFile(node.Pos()) {
					return true
				}
				for _, spec := range node.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						if call, ok := ast.Unparen(v).(*ast.CallExpr); ok && isErrorsNew(info, call) {
							pass.Reportf(call.Pos(), "sentinel declared with errors.New carries no errtax code; use errtax.New or say why it stays untyped")
						}
					}
				}
				return false
			case *ast.ReturnStmt:
				for _, res := range node.Results {
					call, ok := ast.Unparen(res).(*ast.CallExpr)
					if !ok {
						continue
					}
					if isErrorsNew(info, call) {
						pass.Reportf(call.Pos(), "returned errors.New carries no errtax code; return an errtax sentinel or wrap one with %%w")
						continue
					}
					if isFmtErrorf(info, call) && !errorfWraps(call) {
						pass.Reportf(call.Pos(), "returned fmt.Errorf without %%w carries no errtax code; wrap an errtax sentinel")
					}
				}
			}
			return true
		})
	}
	return a
}

func isErrorsNew(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && funcPkgPath(fn) == "errors" && fn.Name() == "New"
}

func isFmtErrorf(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && funcPkgPath(fn) == "fmt" && fn.Name() == "Errorf"
}

// errorfWraps reports whether a fmt.Errorf call's format string carries
// a %w verb. A non-literal format cannot be checked; stay quiet.
func errorfWraps(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return true
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return true
	}
	return strings.Contains(lit.Value, "%w")
}
