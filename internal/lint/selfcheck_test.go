package lint

import (
	"path/filepath"
	"testing"
)

// TestModuleIsLintClean runs the full analyzer suite over this module —
// the same invocation as `make lint` — and requires that no finding
// escapes the committed baseline. The repo's stated goal is an empty
// baseline, so in practice this asserts the module is clean; if a
// convention regression sneaks past CI's lint step, this test fails
// `go test ./...` too.
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	module, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings := Run(module, All(""))
	baseline, err := LoadBaseline(filepath.Join(module.Dir, DefaultBaselineName))
	if err != nil {
		t.Fatal(err)
	}
	fresh, grandfathered := baseline.Filter(findings)
	for _, f := range fresh {
		t.Errorf("new finding: %s", f)
	}
	if len(grandfathered) > 0 {
		t.Logf("%d grandfathered finding(s) remain in the baseline", len(grandfathered))
	}
}
