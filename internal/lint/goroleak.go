package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroLeak reports `go` statements in internal/ library code whose
// goroutine has no visible termination path. A library goroutine must
// be stoppable by its spawner, which the analyzer accepts as any of:
//
//   - it uses a context.Context (selects on Done or passes it to the
//     blocking calls that bound its life),
//   - it is joined: it calls Done on a sync.WaitGroup,
//   - it is channel-coupled: it sends on, receives from, ranges over,
//     selects on, or closes a channel — the spawner ends it by closing
//     or draining the protocol.
//
// Anything else is a goroutine only process exit can stop. In a
// scanner meant to run as a long-lived service, each such spawn is a
// leak multiplied by every scan. Spawns of same-package named
// functions are resolved and their bodies checked by the same rules;
// spawns of other packages' functions are assumed to manage their own
// termination.
//
// internal/experiments owns its process lifecycle the way main
// packages do and is exempt, as are tests.
func GoroLeak() *Analyzer {
	a := &Analyzer{
		Name: "goroleak",
		Doc:  "flags go statements in internal/ code with no termination path (context, WaitGroup join, or channel coupling)",
	}
	a.Run = func(pass *Pass) {
		if !isInternalPkg(pass.Pkg.ImportPath) || strings.Contains(pass.Pkg.ImportPath, "/internal/experiments") {
			return
		}
		decls := declIndex(pass)
		memo := make(map[*ast.FuncDecl]bool)
		pass.inspect(func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok || pass.InTestFile(gs.Pos()) {
				return true
			}
			// Arguments evaluated at spawn don't bound the goroutine's
			// life unless the spawned body uses them; check the body.
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				if !hasTerminationPath(pass.Pkg.Info, fun.Body) {
					pass.Reportf(gs.Pos(), "goroutine has no termination path (no context use, WaitGroup join, or channel coupling); it can only stop at process exit")
				}
			default:
				fn := calleeFunc(pass.Pkg.Info, gs.Call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.ImportPath {
					return true // cross-package spawns manage their own lifecycle
				}
				fd, ok := decls[fn]
				if !ok {
					return true
				}
				terminates, seen := memo[fd]
				if !seen {
					terminates = hasTerminationPath(pass.Pkg.Info, fd.Body) ||
						hasContextParam(fn.Type().(*types.Signature))
					memo[fd] = terminates
				}
				if !terminates {
					pass.Reportf(gs.Pos(), "goroutine %s has no termination path (no context use, WaitGroup join, or channel coupling); it can only stop at process exit", fn.Name())
				}
			}
			return true
		})
	}
	return a
}

// declIndex maps the package's function objects to their declarations.
func declIndex(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					out[obj] = fd
				}
			}
		}
	}
	return out
}

// hasTerminationPath scans a goroutine body for the accepted
// termination evidence. Nested function literals are included: a
// body that delegates its channel protocol to a closure still owns it.
func hasTerminationPath(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
					break
				}
			}
			fn := calleeFunc(info, n)
			if fn != nil && fn.Name() == "Done" && funcPkgPath(fn) == "sync" {
				found = true // joined by a WaitGroup
			}
		case ast.Expr:
			if tv, ok := info.Types[n]; ok {
				if isContextType(tv.Type) {
					found = true
					break
				}
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true // channel-coupled (ranged, passed, or stored)
				}
			}
		}
		return !found
	})
	return found
}
