package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// DefaultBaselineName is the committed baseline file at the module
// root. The repo keeps it empty-or-near-empty; -write-baseline
// regenerates it.
const DefaultBaselineName = ".mtastslint-baseline.json"

// Options configures one driver run.
type Options struct {
	// Dir is the module root. Empty means ".".
	Dir string
	// BaselinePath locates the baseline file; empty means
	// Dir/DefaultBaselineName.
	BaselinePath string
	// DocsPath overrides the observability document for obsnames.
	DocsPath string
	// JSON switches the report from file:line:col text to a JSON
	// document {"findings": [...], "grandfathered": N}.
	JSON bool
	// WriteBaseline regenerates the baseline from current findings
	// instead of failing on them.
	WriteBaseline bool
	// Only restricts the run to the named analyzers (empty = all).
	Only []string
}

// jsonReport is the -json output document.
type jsonReport struct {
	Findings      []Finding `json:"findings"`
	Grandfathered int       `json:"grandfathered"`
}

// Main loads the module, runs the analyzer suite, applies the baseline
// and writes the report. It returns the process exit code: 0 when no
// new findings, 1 when new findings exist, 2 on operational errors
// (parse/typecheck failures, unreadable baseline).
func Main(opts Options, stdout, stderr io.Writer) int {
	dir := opts.Dir
	if dir == "" {
		dir = "."
	}
	analyzers := All(opts.DocsPath)
	if len(opts.Only) > 0 {
		byName := make(map[string]*Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var selected []*Analyzer
		for _, name := range opts.Only {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "mtastslint: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}

	module, err := Load(dir)
	if err != nil {
		fmt.Fprintf(stderr, "mtastslint: %v\n", err)
		return 2
	}
	findings := Run(module, analyzers)

	baselinePath := opts.BaselinePath
	if baselinePath == "" {
		baselinePath = filepath.Join(module.Dir, DefaultBaselineName)
	}
	if opts.WriteBaseline {
		if err := WriteBaseline(baselinePath, findings); err != nil {
			fmt.Fprintf(stderr, "mtastslint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "mtastslint: wrote %d baseline entries to %s\n", len(findings), baselinePath)
		return 0
	}
	baseline, err := LoadBaseline(baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "mtastslint: %v\n", err)
		return 2
	}
	fresh, grandfathered := baseline.Filter(findings)

	if opts.JSON {
		report := jsonReport{Findings: fresh, Grandfathered: len(grandfathered)}
		if report.Findings == nil {
			report.Findings = []Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "mtastslint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range fresh {
			fmt.Fprintln(stdout, f.String())
		}
		if len(fresh) > 0 || len(grandfathered) > 0 {
			fmt.Fprintf(stderr, "mtastslint: %d finding(s), %d grandfathered by %s\n",
				len(fresh), len(grandfathered), filepath.Base(baselinePath))
		}
	}
	if len(fresh) > 0 {
		return 1
	}
	return 0
}
