// Fixture for the sleeploop analyzer (loaded under an internal/ import
// path, where the convention applies).
package fixsleep

import (
	"context"
	"time"
)

func inLoop() {
	for i := 0; i < 3; i++ {
		time.Sleep(time.Millisecond) // want "raw time.Sleep in a loop"
	}
}

func overRange(xs []int) {
	for range xs {
		time.Sleep(time.Millisecond) // want "raw time.Sleep in a loop"
	}
}

func withCtx(ctx context.Context) {
	time.Sleep(time.Millisecond) // want "ignores the function's context.Context"
}

func closureInLoop() {
	for i := 0; i < 2; i++ {
		wait := func() {
			time.Sleep(time.Millisecond) // want "raw time.Sleep in a loop"
		}
		wait()
	}
}

func plain() {
	time.Sleep(time.Millisecond) // no loop, no context in scope: allowed
}
