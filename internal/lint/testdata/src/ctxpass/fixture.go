// Fixture for the ctxpass analyzer (loaded under an internal/ import
// path, where the convention applies).
package fixctx

import (
	"context"
	"net"
	"net/http"
)

func roots() {
	ctx := context.Background() // want "context.Background() in library code"
	_ = ctx.Err()
	_ = context.TODO() // want "context.TODO() in library code"
}

func dials(ctx context.Context) error {
	c, err := net.Dial("tcp", "example.com:25") // want "net.Dial blocks without a context"
	if err == nil {
		return c.Close()
	}
	resp, err := http.Get("https://example.com/") // want "http.Get blocks without a context"
	if err == nil {
		return resp.Body.Close()
	}
	var d net.Dialer
	c2, err := d.DialContext(ctx, "tcp", "example.com:25")
	if err == nil {
		return c2.Close()
	}
	return err
}
