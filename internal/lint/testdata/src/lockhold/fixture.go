// Fixture for the lockhold analyzer (loaded under an internal/ import
// path, where the convention applies).
package fixlockhold

import (
	"net/http"
	"sync"
	"time"
)

type cache struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	jobs chan int
	wg   sync.WaitGroup
	m    map[string]string
}

func (c *cache) sendUnderLock() {
	c.mu.Lock()
	c.jobs <- 1 // want "channel send while holding c.mu"
	c.mu.Unlock()
}

func (c *cache) recvUnderDeferredLock() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-c.jobs // want "channel receive while holding c.mu"
}

func (c *cache) sleepUnderRLock() {
	c.rw.RLock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding c.rw (RLock)"
	c.rw.RUnlock()
}

func (c *cache) fetchUnderLock(url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := http.Get(url) // want "(network I/O) while holding c.mu"
	if err == nil {
		c.m[url] = resp.Status
	}
}

func (c *cache) waitUnderLock() {
	c.mu.Lock()
	c.wg.Wait() // want "Wait while holding c.mu"
	c.mu.Unlock()
}

func (c *cache) selectUnderLock(done chan struct{}) {
	c.mu.Lock()
	select { // want "blocking select while holding c.mu"
	case <-done:
	case c.jobs <- 1:
	}
	c.mu.Unlock()
}

func (c *cache) drainUnderLock() {
	c.mu.Lock()
	for range c.jobs { // want "range over a channel while holding c.mu"
	}
	c.mu.Unlock()
}

// persistLocked hides the blocking operation behind a same-package
// helper; the analyzer follows it transitively.
func (c *cache) persistLocked() {
	time.Sleep(time.Millisecond)
}

func (c *cache) store(k, v string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = v
	c.persistLocked() // want "which reaches time.Sleep while holding c.mu"
}

// release blocks only after the critical section: fine.
func (c *cache) release() {
	c.mu.Lock()
	v := c.m["k"]
	c.mu.Unlock()
	c.jobs <- 1
	_ = v
}

// deferredWork defines a literal under the lock but runs it after;
// literals are independent scopes and must not be flagged here.
func (c *cache) deferredWork() {
	c.mu.Lock()
	fn := func() { c.jobs <- 1 }
	c.mu.Unlock()
	fn()
}

// warm documents a sanctioned exception via the suppression comment.
func (c *cache) warm() {
	c.mu.Lock()
	//lint:ignore lockhold warm-up runs before any concurrent reader exists
	time.Sleep(time.Millisecond)
	c.mu.Unlock()
}
