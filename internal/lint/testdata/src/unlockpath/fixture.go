// Fixture for the unlockpath analyzer (module-wide convention).
package fixunlock

import "sync"

type counter struct {
	mu sync.RWMutex
	m  map[string]int
	n  int
}

func (c *counter) get(k string) (int, bool) {
	c.mu.Lock()
	v, ok := c.m[k]
	if !ok {
		return 0, false // want "return without releasing c.mu"
	}
	c.mu.Unlock()
	return v, true
}

func (c *counter) mustGet(k string) int {
	c.mu.Lock()
	v, ok := c.m[k]
	if !ok {
		panic("missing key") // want "panic with c.mu held"
	}
	c.mu.Unlock()
	return v
}

func (c *counter) leakAtEnd() {
	c.mu.Lock()
	c.n++
} // want "function exits with c.mu still locked"

func (c *counter) double() {
	c.mu.Lock()
	c.mu.Lock() // want "guaranteed self-deadlock"
	c.mu.Unlock()
}

func (c *counter) peek(k string) int {
	c.mu.RLock()
	if v, ok := c.m[k]; ok {
		return v // want "add c.mu.RUnlock() before returning"
	}
	c.mu.RUnlock()
	return 0
}

// good releases via defer at acquisition: the preferred form.
func (c *counter) good(k string) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.m[k]
	return v, ok
}

// manual unlocks on every path explicitly: also fine.
func (c *counter) manual(k string) (int, bool) {
	c.mu.Lock()
	if v, ok := c.m[k]; ok {
		c.mu.Unlock()
		return v, true
	}
	c.mu.Unlock()
	return 0, false
}

// handoff documents an intentional transfer of lock ownership.
func (c *counter) handoff() {
	c.mu.Lock()
	//lint:ignore unlockpath lock ownership transfers to the finalizer goroutine
	return
}
