// Fixture for the goroleak analyzer (loaded under an internal/ import
// path, where the convention applies).
package fixgoroleak

import (
	"context"
	"sync"
	"time"
)

func step() {}

func spin() {
	go func() { // want "goroutine has no termination path"
		for {
			step()
		}
	}()
}

func pump() {
	for {
		step()
	}
}

func spinNamed() {
	go pump() // want "goroutine pump has no termination path"
}

// watch selects on the context: stoppable.
func watch(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// join is WaitGroup-joined: the spawner waits for it.
func join(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		step()
	}()
}

// drain is channel-coupled: closing ch ends it.
func drain(ch chan int) {
	go func() {
		for range ch {
			step()
		}
	}()
}

// poll takes a context; spawning it by name is accepted.
func poll(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
			step()
		}
	}
}

func watchNamed(ctx context.Context) {
	go poll(ctx)
}

// crossPackage spawns another package's function; those manage their
// own lifecycle and are not flagged.
func crossPackage() {
	go time.Sleep(time.Millisecond)
}

// background documents a sanctioned process-lifetime goroutine.
func background() {
	//lint:ignore goroleak process-lifetime janitor, stopped only by exit by design
	go func() {
		for {
			step()
		}
	}()
}
