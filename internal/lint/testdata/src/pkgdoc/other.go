// Package pkgdocfix carries a second package comment. // want "more than one package comment"
package pkgdocfix

// Other keeps the second file non-trivial.
const Other = 2
