// A freeform introduction that ignores the godoc convention. // want "should start"
package pkgdocfix

// Exported so the fixture is not empty.
const Fixture = 1
