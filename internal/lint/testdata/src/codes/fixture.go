// Fixture for the codes analyzer: errors leaving an errtax-producing
// package must carry a taxonomy code.
package fixcodes

import (
	"errors"
	"fmt"
)

// An untyped package-level sentinel is flagged...
var ErrUntyped = errors.New("fixcodes: untyped") // want "sentinel declared with errors.New"

// ...unless it is annotated with a reason.
//
//lint:ignore codes deliberate: absence is a population fact, not a verdict
var ErrDeliberate = errors.New("fixcodes: deliberately untyped")

// Grouped declarations are walked per value.
var (
	ErrGroupedA = errors.New("fixcodes: grouped a") // want "sentinel declared with errors.New"
	notACall    = "fine"
)

func returnsUntypedNew() error {
	return errors.New("fixcodes: ad hoc") // want "returned errors.New"
}

func returnsNakedErrorf(name string) error {
	return fmt.Errorf("fixcodes: bad thing with %s", name) // want "returned fmt.Errorf without %w"
}

func returnsWrappingErrorf(name string) error {
	return fmt.Errorf("fixcodes: %s: %w", name, ErrDeliberate) // wraps: quiet
}

func returnsSentinel() error {
	return ErrDeliberate // not a call: quiet
}

func returnsPair() (int, error) {
	return 0, errors.New("fixcodes: second result") // want "returned errors.New"
}

func suppressedReturn() error {
	//lint:ignore codes caller treats this as opaque by design
	return errors.New("fixcodes: suppressed")
}

func nonLiteralFormat(f string) error {
	return fmt.Errorf(f, "x") // format unknown: quiet
}

func localNotReturned() {
	err := errors.New("fixcodes: local, never escapes via return") // quiet: not return position
	_ = err
	_ = notACall
}
