// Fixture for the obsnames analyzer, checked against the miniature
// catalog in testdata/obsdocs.md.
package fixobs

import (
	"context"

	"github.com/netsecurelab/mtasts/internal/obs"
)

func counters(r *obs.Registry, key string) {
	r.Counter("scan.domains.total").Inc()
	r.Counter("scan.domains.bogus").Inc() // want "not documented in docs/OBSERVABILITY.md"
	r.Counter("scan.category." + key).Inc()
	r.Counter("scan.nope." + key).Inc() // want "no documented metric matches prefix"
	r.Counter(key + ".retry.attempts").Inc()
	r.Counter(key + ".retry.bogus").Inc() // want "no documented metric matches suffix"
	r.Counter(key).Inc()                  // fully dynamic: nothing to check statically
}

func spans(ctx context.Context, r *obs.Registry) {
	sp := r.StartSpan("scan.domain")
	sp2 := obs.StartSpan(ctx, "scan.domain.seconds")
	sp3 := obs.StartSpan(ctx, "scan.bogus.span") // want "not documented in docs/OBSERVABILITY.md"
	_, _, _ = sp, sp2, sp3
}
