// Fixture for the errdrop analyzer: every line carrying a want comment
// must produce a finding whose message contains the quoted substring;
// every other line must stay quiet.
package fixerrdrop

import (
	"errors"
	"fmt"
	"strings"
)

type closer struct{}

func (closer) Close() error { return nil }

func mayFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func drops() {
	mayFail()      // want "error result of fixerrdrop.mayFail is discarded"
	_ = mayFail()  // want "assigned to _"
	_, _ = pair()  // want "assigned to _"
	n, _ := pair() // want "assigned to _"
	if n != 0 {
		return
	}
	go mayFail()    // want "error result of go fixerrdrop.mayFail"
	defer mayFail() // want "error result of deferred fixerrdrop.mayFail"
}

func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := pair()
	if n == 0 {
		return err
	}
	return nil
}

func allowlisted(c closer) {
	var sb strings.Builder
	sb.WriteString("never fails")
	fmt.Println("conventionally best-effort")
	defer c.Close()
	fn := mayFail
	fn() // calls through function values have no identity to allowlist
}

func suppressed() {
	//lint:ignore errdrop fixture demonstrates the standalone directive
	mayFail()
	mayFail() //lint:ignore errdrop fixture demonstrates the trailing directive
	//lint:ignore errdrop
	mayFail() // want "is discarded"
}
