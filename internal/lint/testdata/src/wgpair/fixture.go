// Fixture for the wgpair analyzer (module-wide convention).
package fixwgpair

import "sync"

func step() {}

func addInside(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want "wg.Add inside the goroutine races with Wait"
		defer wg.Done()
		step()
	}()
	wg.Wait()
}

func bareDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		step()
		wg.Done() // want "wg.Done not deferred"
	}()
	wg.Wait()
}

func doneInBranch(wg *sync.WaitGroup, ok bool) {
	wg.Add(1)
	go func() {
		if ok {
			wg.Done() // want "wg.Done not deferred"
			return
		}
		step()
		wg.Done() // want "wg.Done not deferred"
	}()
}

func byValue(wg sync.WaitGroup) { // want "sync.WaitGroup passed by value"
	wg.Wait()
}

func byValueClosure() {
	f := func(wg sync.WaitGroup) { // want "sync.WaitGroup passed by value"
		wg.Wait()
	}
	_ = f
}

// good is the sanctioned pattern: Add before spawn, deferred Done.
func good(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		step()
	}()
	wg.Wait()
}

// spawnerAdd calls Add outside the spawned body; only Add inside the
// goroutine itself races.
func spawnerAdd() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wg.Add(0) // want "wg.Add inside the goroutine races with Wait"
	}()
	wg.Wait()
}

// helperNotSpawned shows a synchronous literal is not a goroutine body:
// Add inside it is the spawner's Add, which is fine.
func helperNotSpawned(wg *sync.WaitGroup) {
	register := func() {
		wg.Add(1)
	}
	register()
	go func() {
		defer wg.Done()
		step()
	}()
	wg.Wait()
}

// suppressed documents a body that provably cannot panic.
func suppressed(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		step()
		//lint:ignore wgpair body cannot panic; Done stays last deliberately
		wg.Done()
	}()
}
