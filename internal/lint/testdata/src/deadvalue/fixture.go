// Fixture for the deadvalue analyzer.
package fixdead

import (
	"errors"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func compute(s string, m map[string]int) {
	_ = strings.ToUpper(s) // want "dead `_ =` assignment"
	_ = s                  // want "dead `_ =` assignment"
	_ = m["k"]             // want "dead `_ =` assignment"
	_ = len(s)             // want "dead `_ =` assignment"
	strings.ToUpper(s)     // want "discarded and the call has no side effects"

	var x any = s
	_ = x.(string) // single-value assertion panics on mismatch: not dead
	_ = mayFail()  // dropping an error is errdrop's finding, not deadvalue's

	upper := strings.ToUpper(s)
	if upper == "" {
		panic("unreachable")
	}
}
