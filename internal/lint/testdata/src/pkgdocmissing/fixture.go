package pkgdocmissing // want "no package documentation comment"

// Missing keeps the fixture non-trivial; only the package clause lacks
// a doc comment.
const Missing = 3
