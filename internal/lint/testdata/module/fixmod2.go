package fixmod

import "sync"

var mu sync.Mutex
var n int

// Bump leaks the lock on the early path; the driver tests pin the
// unlockpath finding and -only selection on it.
func Bump(skip bool) {
	mu.Lock()
	if skip {
		return
	}
	n++
	mu.Unlock()
}
