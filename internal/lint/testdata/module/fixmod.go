// Package fixmod is a one-file module with exactly one lint finding (a
// dropped error); the driver tests pin the baseline round-trip on it.
package fixmod

import "errors"

func fail() error { return errors.New("boom") }

// Use drops fail's error on purpose.
func Use() {
	_ = fail()
}
