module example.com/fixmod

go 1.22
