package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"path/filepath"
	"strings"
	"sync"
)

// obsNameMethods maps obs API entry points to the index of their
// metric-name argument.
var obsNameMethods = map[string]int{
	"Counter":   0,
	"Gauge":     0,
	"GaugeFunc": 0,
	"Histogram": 0,
	"Progress":  0,
	"StartSpan": 0, // (*Registry).StartSpan(name); package-level StartSpan(ctx, name) handled below
}

// ObsNames checks every metric-name string reaching the obs registry —
// Counter, Gauge, GaugeFunc, Histogram, Progress and StartSpan — against
// the registry generated from docs/OBSERVABILITY.md, catching typos,
// case drift and undocumented metrics at compile time rather than on a
// dashboard. Constant names must be documented exactly; for
// "literal" + dynamic (and dynamic + "literal") concatenations the
// literal part must anchor a documented <wildcard> pattern. Fully
// dynamic names are skipped. docsPath overrides the document location
// (tests); empty means <module>/docs/OBSERVABILITY.md.
func ObsNames(docsPath string) *Analyzer {
	a := &Analyzer{
		Name: "obsnames",
		Doc:  "checks obs metric names against the docs/OBSERVABILITY.md catalog",
	}
	var (
		once    sync.Once
		reg     *MetricRegistry
		loadErr error
		errSent bool
	)
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		pass.inspect(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "/internal/obs") {
				return true
			}
			argIdx, ok := obsNameMethods[fn.Name()]
			if !ok {
				return true
			}
			if fn.Name() == "StartSpan" && recvTypeString(fn) == "" {
				argIdx = 1 // package-level StartSpan(ctx, name)
			}
			if argIdx >= len(call.Args) {
				return true
			}
			// The registry loads lazily at the first obs call site, so a
			// module that never records a metric needs no catalog at all.
			once.Do(func() {
				path := docsPath
				if path == "" {
					path = filepath.Join(pass.Module.Dir, "docs", "OBSERVABILITY.md")
				}
				reg, loadErr = LoadMetricRegistry(path)
			})
			if loadErr != nil {
				if !errSent {
					errSent = true
					pass.Reportf(call.Pos(), "cannot build metric registry: %v", loadErr)
				}
				return true
			}
			checkMetricName(pass, reg, call.Args[argIdx])
			return true
		})
	}
	return a
}

func checkMetricName(pass *Pass, reg *MetricRegistry, arg ast.Expr) {
	info := pass.Pkg.Info
	// The type checker constant-folds literals and concatenations of
	// constants, so "a" + "b" and named constants all land here.
	if tv, ok := info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		name := constant.StringVal(tv.Value)
		if !reg.MatchExact(name) {
			pass.Reportf(arg.Pos(), "metric name %q is not documented in docs/OBSERVABILITY.md", name)
		}
		return
	}
	bin, ok := ast.Unparen(arg).(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD {
		return // fully dynamic: nothing to check statically
	}
	constString := func(e ast.Expr) (string, bool) {
		tv, ok := info.Types[e]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return "", false
		}
		return constant.StringVal(tv.Value), true
	}
	if lit, ok := constString(bin.X); ok {
		if !reg.MatchPrefix(lit) {
			pass.Reportf(arg.Pos(), "no documented metric matches prefix %q (docs/OBSERVABILITY.md)", lit)
		}
		return
	}
	if lit, ok := constString(bin.Y); ok {
		if !reg.MatchSuffix(lit) {
			pass.Reportf(arg.Pos(), "no documented metric matches suffix %q (docs/OBSERVABILITY.md)", lit)
		}
	}
}
