package lint

import (
	"go/ast"
	"strings"
)

// PkgDoc checks that every package carries a package documentation
// comment, that library comments follow the godoc convention ("Package
// <name> ..."; main packages may open freeform, as the examples do),
// and that exactly one file carries it — so coverage can't silently
// regress and `go doc` never renders concatenated fragments. The
// comment conventionally lives in doc.go for multi-file packages, but
// any single file satisfies the check.
func PkgDoc() *Analyzer {
	a := &Analyzer{
		Name: "pkgdoc",
		Doc:  "checks that every package has a single, well-formed package doc comment",
	}
	a.Run = func(pass *Pass) {
		var docs []*ast.File
		for _, f := range pass.Pkg.Files {
			if f.Doc != nil {
				docs = append(docs, f)
			}
		}
		name := pass.Pkg.Files[0].Name.Name
		if len(docs) == 0 {
			pass.Reportf(pass.Pkg.Files[0].Name.Pos(),
				"package %s has no package documentation comment (add one, conventionally in doc.go)", name)
			return
		}
		for _, f := range docs[1:] {
			pass.Reportf(f.Doc.Pos(),
				"package %s has more than one package comment; keep a single one (conventionally in doc.go)", name)
		}
		if name == "main" {
			return // presence is enough for commands and examples
		}
		text := docs[0].Doc.Text()
		want := "Package " + name + " "
		if !strings.HasPrefix(text, want) && !strings.HasPrefix(text, strings.TrimRight(want, " ")+"\n") {
			pass.Reportf(docs[0].Doc.Pos(),
				"package comment should start %q (godoc convention), found %q",
				want, firstLine(text))
		}
	}
	return a
}

// firstLine truncates doc text to its first line for a readable finding.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 60 {
		s = s[:60] + "..."
	}
	return s
}
