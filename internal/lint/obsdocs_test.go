package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestLoadMetricRegistryRealDocs pins the parser against the real
// observability document: names the code actually uses must be in the
// registry, in every matching mode obsnames relies on.
func TestLoadMetricRegistryRealDocs(t *testing.T) {
	reg, err := LoadMetricRegistry(filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"scan.domains.total",
		"mtasts.fetch.ok",
		"mtasts.fetch.wrong_content_type", // RFC 8461 §3.3 counter added with this suite
		"obs.export.errors",
		"resolver.cache.hits",      // {…} alternation expansion
		"scan.category.dns_record", // instance of scan.category.<category>
		"scan.domain.seconds",      // implied by the scan.domain span
		"mtasts.fetch.tls_handshake.seconds",
	} {
		if !reg.MatchExact(name) {
			t.Errorf("MatchExact(%q) = false, want documented", name)
		}
	}
	for _, name := range []string{"scan.bogus.metric", "docs/LINT.md", "WriteJSON"} {
		if reg.MatchExact(name) {
			t.Errorf("MatchExact(%q) = true for an undocumented name", name)
		}
	}
	if !reg.MatchPrefix("scan.policy.stage_errors.") {
		t.Error(`MatchPrefix("scan.policy.stage_errors.") = false`)
	}
	if reg.MatchPrefix("scan.nope.") {
		t.Error(`MatchPrefix("scan.nope.") = true`)
	}
	if !reg.MatchSuffix(".retry.attempts") {
		t.Error(`MatchSuffix(".retry.attempts") = false`)
	}
	if reg.MatchSuffix(".retry.nonsense") {
		t.Error(`MatchSuffix(".retry.nonsense") = true`)
	}
}

func TestLoadMetricRegistryErrors(t *testing.T) {
	if _, err := LoadMetricRegistry(filepath.Join(t.TempDir(), "absent.md")); err == nil {
		t.Error("missing file: want error")
	}
	empty := filepath.Join(t.TempDir(), "empty.md")
	if err := os.WriteFile(empty, []byte("# No catalog here\n\njust `prose`\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMetricRegistry(empty); err == nil {
		t.Error("catalog-less file: want error")
	}
}

func TestExpandAlternation(t *testing.T) {
	got := expandAlternation("resolver.cache.{entries,hits}")
	want := []string{"resolver.cache.entries", "resolver.cache.hits"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("expandAlternation = %v, want %v", got, want)
	}
	if got := expandAlternation("plain.name"); !reflect.DeepEqual(got, []string{"plain.name"}) {
		t.Errorf("plain token = %v", got)
	}
}

func TestMetricNameShaped(t *testing.T) {
	cases := []struct {
		tok    string
		single bool
		want   bool
	}{
		{"scan.domains.total", false, true},
		{"scan.category.<category>", false, true},
		{"scan", false, false}, // single segment needs the progress-row carve-out
		{"scan", true, true},
		{"docs/LINT.md", false, false},
		{"ROADMAP.md", false, false},
		{"scan..total", false, false},
	}
	for _, c := range cases {
		if got := metricNameShaped(c.tok, c.single); got != c.want {
			t.Errorf("metricNameShaped(%q, %v) = %v, want %v", c.tok, c.single, got, c.want)
		}
	}
}
