package lint

import (
	"fmt"
	"os"
	"strings"
)

// MetricRegistry is the set of metric names docs/OBSERVABILITY.md
// documents — the ground truth obsnames checks call sites against.
// Names come in two forms: exact ("scan.domains.total") and patterns
// with <wildcard> segments ("scan.category.<category>",
// "<op>.retry.attempts"), each wildcard standing for exactly one
// dotted segment supplied at run time.
type MetricRegistry struct {
	exact    map[string]bool
	patterns [][]string // dotted segments; "<...>" entries are wildcards
}

// Names returns the exact names and pattern spellings in the registry,
// unsorted (tests sort).
func (r *MetricRegistry) Names() []string {
	var out []string
	for n := range r.exact {
		out = append(out, n)
	}
	for _, p := range r.patterns {
		out = append(out, strings.Join(p, "."))
	}
	return out
}

func isWildcard(seg string) bool {
	return strings.HasPrefix(seg, "<") && strings.HasSuffix(seg, ">")
}

// MatchExact reports whether a fully-literal metric name is documented:
// either verbatim or as an instance of a pattern.
func (r *MetricRegistry) MatchExact(name string) bool {
	if r.exact[name] {
		return true
	}
	segs := strings.Split(name, ".")
	for _, pat := range r.patterns {
		if len(pat) != len(segs) {
			continue
		}
		ok := true
		for i, p := range pat {
			if !isWildcard(p) && p != segs[i] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// MatchPrefix reports whether some documented name or pattern can begin
// with the literal prefix lit (the "scan.category." in
// `"scan.category." + c.Key()`).
func (r *MetricRegistry) MatchPrefix(lit string) bool {
	for n := range r.exact {
		if strings.HasPrefix(n, lit) {
			return true
		}
	}
	for _, pat := range r.patterns {
		head, ok := patternHead(pat)
		if ok && strings.HasPrefix(head, lit) {
			return true
		}
		// A prefix reaching past the literal head into wildcard
		// territory (rare) cannot be validated; treat the head match as
		// the requirement.
		if ok && strings.HasPrefix(lit, head) {
			return true
		}
	}
	return false
}

// MatchSuffix reports whether some documented pattern can end with the
// literal suffix lit (the ".retry.attempts" in
// `p.Name + ".retry.attempts"`).
func (r *MetricRegistry) MatchSuffix(lit string) bool {
	for _, pat := range r.patterns {
		tail, ok := patternTail(pat)
		if ok && strings.HasSuffix(tail, lit) {
			return true
		}
	}
	for n := range r.exact {
		if strings.HasSuffix(n, lit) {
			return true
		}
	}
	return false
}

// patternHead returns the literal text before the first wildcard,
// including the joining dot ("scan.category.").
func patternHead(pat []string) (string, bool) {
	var head []string
	for _, seg := range pat {
		if isWildcard(seg) {
			return strings.Join(head, ".") + ".", true
		}
		head = append(head, seg)
	}
	return "", false
}

// patternTail returns the literal text after the last wildcard,
// including the joining dot (".retry.attempts").
func patternTail(pat []string) (string, bool) {
	last := -1
	for i, seg := range pat {
		if isWildcard(seg) {
			last = i
		}
	}
	if last < 0 || last == len(pat)-1 {
		return "", false
	}
	return "." + strings.Join(pat[last+1:], "."), true
}

// LoadMetricRegistry generates the registry from the observability
// document: it harvests every backticked metric name in the
// "## Metric catalog" section — table rows, span lists and prose —
// expanding {a,b,c} alternations and adding the .seconds/.total/.errors
// series every span implies. Keeping the registry generated from the
// docs (rather than hand-maintained) is the point: an undocumented
// metric cannot pass the linter, and a documented-but-renamed one
// fails at the stale call site.
func LoadMetricRegistry(path string) (*MetricRegistry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obsnames registry: %w", err)
	}
	reg := &MetricRegistry{exact: make(map[string]bool)}
	inCatalog := false
	inSpans := false
	for _, line := range strings.Split(string(b), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "## ") {
			inCatalog = trimmed == "## Metric catalog"
			continue
		}
		if !inCatalog {
			continue
		}
		if trimmed == "" {
			inSpans = false
			continue
		}
		if strings.HasPrefix(trimmed, "Spans:") || strings.HasPrefix(trimmed, "Span ") {
			inSpans = true
		}
		isProgressRow := strings.HasPrefix(trimmed, "|") && strings.Contains(trimmed, "| progress")
		for _, tok := range backtickTokens(trimmed) {
			for _, name := range expandAlternation(tok) {
				if !metricNameShaped(name, isProgressRow) {
					continue
				}
				reg.add(name)
				if inSpans {
					reg.add(name + ".seconds")
					reg.add(name + ".total")
					reg.add(name + ".errors")
				}
			}
		}
	}
	if len(reg.exact) == 0 && len(reg.patterns) == 0 {
		return nil, fmt.Errorf("obsnames registry: no metric names found in %s (missing \"## Metric catalog\" section?)", path)
	}
	return reg, nil
}

func (r *MetricRegistry) add(name string) {
	if strings.Contains(name, "<") {
		r.patterns = append(r.patterns, strings.Split(name, "."))
		return
	}
	r.exact[name] = true
}

// backtickTokens extracts `code`-quoted tokens from a markdown line.
func backtickTokens(line string) []string {
	var out []string
	for {
		i := strings.IndexByte(line, '`')
		if i < 0 {
			return out
		}
		line = line[i+1:]
		j := strings.IndexByte(line, '`')
		if j < 0 {
			return out
		}
		out = append(out, line[:j])
		line = line[j+1:]
	}
}

// expandAlternation turns "a.{x,y}.b" into ["a.x.b", "a.y.b"];
// tokens without braces pass through.
func expandAlternation(tok string) []string {
	i := strings.IndexByte(tok, '{')
	if i < 0 {
		return []string{tok}
	}
	j := strings.IndexByte(tok[i:], '}')
	if j < 0 {
		return []string{tok}
	}
	j += i
	var out []string
	for _, alt := range strings.Split(tok[i+1:j], ",") {
		out = append(out, expandAlternation(tok[:i]+alt+tok[j+1:])...)
	}
	return out
}

// metricNameShaped filters harvested tokens down to plausible metric
// names: lowercase dotted paths (single-segment only for progress-table
// rows), with <wildcard> segments allowed; paths, flags and identifiers
// with slashes or uppercase are rejected.
func metricNameShaped(tok string, allowSingleSegment bool) bool {
	if tok == "" || strings.ContainsAny(tok, "/* ") {
		return false
	}
	segs := strings.Split(tok, ".")
	if len(segs) < 2 && !allowSingleSegment {
		return false
	}
	for _, seg := range segs {
		if seg == "" {
			return false
		}
		if isWildcard(seg) {
			continue
		}
		for _, r := range seg {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' && r != '-' {
				return false
			}
		}
	}
	return true
}
