package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SleepLoop reports raw time.Sleep calls in retryable paths of
// internal/ library code: a Sleep inside a loop is a hand-rolled retry
// that should be retry.Policy.Do (budgeted, jittered, context-aware),
// and a Sleep inside a function that received a context.Context ignores
// cancellation — a canceled scan would sit out the full delay. The
// retry package itself (which implements the sanctioned backoff wait)
// is exempt.
func SleepLoop() *Analyzer {
	a := &Analyzer{
		Name: "sleeploop",
		Doc:  "flags raw time.Sleep in loops or context-aware internal/ code",
	}
	a.Run = func(pass *Pass) {
		if !isInternalPkg(pass.Pkg.ImportPath) || strings.HasSuffix(pass.Pkg.ImportPath, "/internal/retry") {
			return
		}
		info := pass.Pkg.Info
		for _, file := range pass.Pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
					continue
				}
				hasCtx := false
				if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
					hasCtx = hasContextParam(obj.Type().(*types.Signature))
				}
				sleepWalk(pass, fd.Body, 0, hasCtx)
			}
		}
	}
	return a
}

// sleepWalk scans body for time.Sleep, tracking enclosing-loop depth.
// Function literals inherit both the loop depth and the context reach
// of their definition site: a closure built inside a retry loop (or a
// context-aware function) runs under the same obligations.
func sleepWalk(pass *Pass, body ast.Node, loopDepth int, hasCtx bool) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			sleepWalk(pass, n.Body, loopDepth+1, hasCtx)
			return false
		case *ast.RangeStmt:
			sleepWalk(pass, n.Body, loopDepth+1, hasCtx)
			return false
		case *ast.FuncLit:
			litCtx := hasCtx
			if tv, ok := info.Types[n]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok && hasContextParam(sig) {
					litCtx = true
				}
			}
			sleepWalk(pass, n.Body, loopDepth, litCtx)
			return false
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil || fn.Name() != "Sleep" || funcPkgPath(fn) != "time" || recvTypeString(fn) != "" {
				return true
			}
			switch {
			case loopDepth > 0:
				pass.Reportf(n.Pos(), "raw time.Sleep in a loop; use retry.Policy backoff (internal/retry)")
			case hasCtx:
				pass.Reportf(n.Pos(), "time.Sleep ignores the function's context.Context; use a context-aware wait")
			}
		}
		return true
	})
}
