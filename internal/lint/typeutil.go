package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the function or method object a call invokes, or
// nil for calls through function values, builtins and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package declaring fn
// ("" for builtins and universe-scope objects).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvTypeString renders fn's receiver type like "*bytes.Buffer", or ""
// for package-level functions. Stdlib receivers are qualified by import
// path ("net/http.Header"), which the allowlists key on; messages use
// pkgNameQualifier for readability.
func recvTypeString(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return types.TypeString(sig.Recv().Type(), nil)
}

func pkgNameQualifier(p *types.Package) string { return p.Name() }

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callResults returns the result tuple of call's static callee type
// (nil when the expression is not of a function type, e.g. a
// conversion).
func callResults(info *types.Info, call *ast.CallExpr) *types.Tuple {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Results()
}

// errorResultIndexes lists the positions of error-typed results in the
// call's result tuple.
func errorResultIndexes(info *types.Info, call *ast.CallExpr) []int {
	results := callResults(info, call)
	if results == nil {
		return nil
	}
	var idx []int
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			idx = append(idx, i)
		}
	}
	return idx
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// hasContextParam reports whether the function type carries a
// context.Context parameter.
func hasContextParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isInternalPkg reports whether the import path lies under the module's
// internal/ tree — the library code the conventions target (commands
// under cmd/ and examples/ are allowed more latitude).
func isInternalPkg(importPath string) bool {
	return strings.Contains(importPath, "/internal/") || strings.HasSuffix(importPath, "/internal")
}

// funcName renders a call target for messages: "pkg.Func" or
// "(recv).Method".
func funcName(fn *types.Func) string {
	if fn == nil {
		return "function"
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), pkgNameQualifier) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
