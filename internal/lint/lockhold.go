package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockHold reports potentially blocking operations executed while a
// sync.Mutex / sync.RWMutex is held in the same function: channel sends
// and receives, blocking selects, time.Sleep, WaitGroup/Cond waits,
// singleflight joins (sf.Group.Do / sf.Cache.Do), internal/store I/O,
// and stdlib network I/O. A goroutine that blocks under a lock extends
// the critical section to the duration of the blocked operation — at
// scan concurrency that turns one slow fetch into a stalled worker
// pool, and a channel wait under a lock its peer needs is a deadlock.
// Same-package helpers are followed transitively, so a Locked-suffixed
// helper that hides a store write is still caught at the locked call
// site.
//
// internal/store is exempt: its mutex exists to serialize segment file
// I/O, which is the package's entire job.
func LockHold() *Analyzer {
	a := &Analyzer{
		Name: "lockhold",
		Doc:  "flags blocking operations (channels, sleeps, store/network I/O, singleflight) while a mutex is held",
	}
	a.Run = func(pass *Pass) {
		if !isInternalPkg(pass.Pkg.ImportPath) || strings.Contains(pass.Pkg.ImportPath, "/internal/store") {
			return
		}
		summaries := newBlockingSummaries(pass)
		hooks := lockHooks{
			blockingCall: func(call *ast.CallExpr) string {
				return classifyBlockingCall(pass, call, summaries)
			},
		}
		for _, file := range pass.Pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
					continue
				}
				hooks.onBlocking = func(pos token.Pos, desc string, held []*heldLock) {
					pass.Reportf(pos, "%s while holding %s; move the blocking operation outside the critical section",
						desc, heldLockNames(held))
				}
				walkLockFlow(pass.Pkg.Info, fd.Body, hooks)
			}
		}
	}
	return a
}

// heldLockNames renders the held set for messages: "c.mu" or
// "c.mu (RLock)", comma-joined when nested.
func heldLockNames(held []*heldLock) string {
	parts := make([]string, 0, len(held))
	for _, l := range held {
		name := l.expr
		if l.read {
			name += " (RLock)"
		}
		parts = append(parts, name)
	}
	return strings.Join(parts, ", ")
}
