// Package lint is the project's static-analysis framework: a small
// analyzer API over the standard library's go/parser, go/ast and
// go/types (the module deliberately has zero external dependencies, so
// golang.org/x/tools is off the table), plus the module loader,
// suppression comments and finding baseline that the cmd/mtastslint
// driver composes.
//
// The analyzers enforce the scan pipeline's cross-cutting conventions —
// errors must not be silently dropped (errdrop), blocking network code
// must thread context.Context (ctxpass), metric names must match
// docs/OBSERVABILITY.md (obsnames), computed values must be used
// (deadvalue), retryable paths must use internal/retry backoff
// rather than raw time.Sleep (sleeploop), errors leaving the
// errtax-producing packages must carry a taxonomy code (codes), and
// every package must carry a well-formed package doc comment (pkgdoc).
//
// The concurrency pack guards the scan/sender/campaign stack's
// goroutine and lock discipline: no blocking operation under a held
// mutex (lockhold), every Lock released on every return/panic path
// (unlockpath), every internal/ goroutine stoppable through context,
// WaitGroup join or channel coupling (goroleak), and WaitGroup
// Add/Done used in the race-free pattern (wgpair).
//
// docs/LINT.md documents each
// analyzer, the //lint:ignore suppression syntax, and the baseline
// workflow.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one reported convention violation.
type Finding struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// File is the source file path relative to the module root.
	File string `json:"file"`
	// Line and Col are the 1-based source position.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message describes the violation.
	Message string `json:"message"`
}

// Key is the baseline identity of a finding: analyzer, file and message
// but not the line, so unrelated edits above a grandfathered site do not
// resurrect it.
func (f Finding) Key() string { return f.Analyzer + "\x00" + f.File + "\x00" + f.Message }

// String formats the finding the way compilers do: file:line:col: message [analyzer].
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// Analyzer is one named check. Run is invoked once per package and
// reports through the pass.
type Analyzer struct {
	// Name identifies the analyzer in findings, suppression comments and
	// baseline entries.
	Name string
	// Doc is a one-line description (the driver's -list output).
	Doc string
	// Run inspects pass.Pkg and calls pass.Report for each violation.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Module is the whole loaded module (for cross-package facts and the
	// module root, against which finding paths are relativized).
	Module *Module
	// Pkg is the package under analysis.
	Pkg *Package

	findings *[]Finding
	ignores  ignoreIndex
}

// Fset returns the position set shared by every file in the module.
func (p *Pass) Fset() *token.FileSet { return p.Module.Fset }

// Report records a finding at pos unless a //lint:ignore comment
// suppresses this analyzer on that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	if p.ignores.suppressed(position.Filename, position.Line, p.Analyzer.Name) {
		return
	}
	file := position.Filename
	if rel, err := filepath.Rel(p.Module.Dir, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file (fixture loads
// include them; convention analyzers exempt test code).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Module.Fset.Position(pos).Filename, "_test.go")
}

// Run applies every analyzer to every package of the module and returns
// the findings sorted by file, line, column and analyzer. Suppression
// comments (//lint:ignore) are honored; the baseline is the caller's
// concern (see Baseline.Filter).
func Run(m *Module, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range m.Packages {
		ignores := buildIgnoreIndex(m.Fset, pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Module:   m,
				Pkg:      pkg,
				findings: &findings,
				ignores:  ignores,
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// All returns every analyzer in the suite, in stable order. docsPath
// locates docs/OBSERVABILITY.md for obsnames; empty means the module
// default.
func All(docsPath string) []*Analyzer {
	return []*Analyzer{
		ErrDrop(),
		CtxPass(),
		ObsNames(docsPath),
		DeadValue(),
		SleepLoop(),
		Codes(),
		PkgDoc(),
		LockHold(),
		UnlockPath(),
		GoroLeak(),
		WGPair(),
	}
}

// inspect walks every file of the pass's package in source order,
// calling fn for each node; fn returning false prunes the subtree.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
