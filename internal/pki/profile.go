package pki

import "time"

// CertProfile is the descriptor form of a server certificate, carrying
// exactly the attributes PKIX validation inspects. The at-scale (Offline)
// scan pipeline attaches a CertProfile to every simulated TLS endpoint;
// ValidateProfile reproduces the decision procedure of Validate so the two
// paths yield identical Problem codes for equivalent configurations.
type CertProfile struct {
	// Missing means no certificate is installed for the endpoint; clients
	// observe a TLS alert (ProblemNoCertificate).
	Missing bool
	// Names is the SAN/CN list; entries may use a leading "*." wildcard.
	Names []string
	// NotBefore and NotAfter bound the validity window.
	NotBefore, NotAfter time.Time
	// SelfSigned marks a self-issued leaf outside the trust store.
	SelfSigned bool
	// Untrusted marks a chain to an unknown (but not self-issued) issuer.
	Untrusted bool
}

// GoodProfile returns a profile that validates for the given names in the
// window (now-1h, now+90d).
func GoodProfile(now time.Time, names ...string) CertProfile {
	return CertProfile{
		Names:     names,
		NotBefore: now.Add(-time.Hour),
		NotAfter:  now.Add(90 * 24 * time.Hour),
	}
}

// ExpiredProfile returns a profile whose validity ended before now.
func ExpiredProfile(now time.Time, names ...string) CertProfile {
	return CertProfile{
		Names:     names,
		NotBefore: now.Add(-100 * 24 * time.Hour),
		NotAfter:  now.Add(-10 * 24 * time.Hour),
	}
}

// SelfSignedProfile returns a self-issued profile for the names.
func SelfSignedProfile(now time.Time, names ...string) CertProfile {
	p := GoodProfile(now, names...)
	p.SelfSigned = true
	return p
}

// MissingProfile returns a profile for an endpoint with no certificate.
func MissingProfile() CertProfile { return CertProfile{Missing: true} }

// Covers reports whether any profile name matches host.
func (p CertProfile) Covers(host string) bool {
	for _, n := range p.Names {
		if MatchHostname(n, host) {
			return true
		}
	}
	return false
}

// ValidateProfile applies PKIX validation semantics to a descriptor. The
// check order mirrors the live path: certificate presence, then chain
// trust/validity, then name coverage — so a self-signed certificate for the
// wrong name reports self-signed, as a live TLS client would.
func ValidateProfile(p CertProfile, host string, at time.Time) Problem {
	if p.Missing {
		return ProblemNoCertificate
	}
	if p.SelfSigned {
		return ProblemSelfSigned
	}
	if p.Untrusted {
		return ProblemUntrusted
	}
	if !p.NotBefore.IsZero() && at.Before(p.NotBefore) {
		return ProblemExpired // outside validity window (not yet valid)
	}
	if !p.NotAfter.IsZero() && at.After(p.NotAfter) {
		return ProblemExpired
	}
	if !p.Covers(host) {
		return ProblemNameMismatch
	}
	return OK
}
