// Package pki is the web-PKI substrate for the MTA-STS reproduction. It
// plays the role the public certificate ecosystem plays for the paper: it
// can mint real X.509 certificates (a test CA standing in for ACME issuers)
// for the live servers, and it defines the PKIX validation error taxonomy
// the study reports on (expired, self-signed, name mismatch, untrusted
// chain, missing certificate — Figures 5 and 6).
//
// Because generating millions of real certificates is infeasible, the
// at-scale pipeline uses CertProfile, a descriptor carrying exactly the
// attributes PKIX validation inspects; ValidateProfile applies the same
// decision procedure (and yields the same Problem codes) as the live-path
// x509 classification in ClassifyVerifyError.
package pki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"math/big"
	"strings"
	"sync"
	"time"

	"github.com/netsecurelab/mtasts/internal/strutil"
)

// Problem identifies why PKIX validation failed. The zero value means the
// certificate validated.
type Problem int

// Validation outcomes, mirroring the paper's error categories.
const (
	// OK: the certificate chain validates and covers the host name.
	OK Problem = iota
	// ProblemExpired: the certificate is outside its validity window.
	ProblemExpired
	// ProblemSelfSigned: the leaf is self-issued and not in the trust store.
	ProblemSelfSigned
	// ProblemUntrusted: the chain does not lead to a trusted root.
	ProblemUntrusted
	// ProblemNameMismatch: no SAN/CN entry covers the host
	// ("Common Name or Subject Alternative Name mismatch" in §4.3.3).
	ProblemNameMismatch
	// ProblemNoCertificate: the server has no certificate installed for the
	// name (observed as a TLS alert; the DMARCReport case in §4.3.3).
	ProblemNoCertificate
)

// String returns a short stable identifier for the problem.
func (p Problem) String() string {
	switch p {
	case OK:
		return "ok"
	case ProblemExpired:
		return "expired"
	case ProblemSelfSigned:
		return "self-signed"
	case ProblemUntrusted:
		return "untrusted"
	case ProblemNameMismatch:
		return "name-mismatch"
	case ProblemNoCertificate:
		return "no-certificate"
	}
	return fmt.Sprintf("problem(%d)", int(p))
}

// Valid reports whether the outcome is OK.
func (p Problem) Valid() bool { return p == OK }

// CA is a certificate authority that can issue leaf certificates for the
// live substrate servers.
type CA struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey

	mu     sync.Mutex
	serial int64
}

// NewCA creates a self-signed root CA valid for ten years around now.
func NewCA(name string, now time.Time) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generating CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: name, Organization: []string{"MTA-STS Repro Test CA"}},
		NotBefore:             now.Add(-time.Hour),
		NotAfter:              now.AddDate(10, 0, 0),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("pki: self-signing CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{Cert: cert, Key: key, serial: 1}, nil
}

// Pool returns a certificate pool containing only this CA.
func (ca *CA) Pool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(ca.Cert)
	return pool
}

// IssueOptions controls leaf issuance.
type IssueOptions struct {
	// Names is the SAN list; the first entry also becomes the CN.
	Names []string
	// NotBefore/NotAfter bound validity; zero values default to
	// (now-1h, now+90d).
	NotBefore, NotAfter time.Time
	// SelfSigned issues the leaf signed by its own key instead of the CA.
	SelfSigned bool
	// Now anchors the defaults.
	Now time.Time
}

// Leaf is an issued certificate with its private key, ready for use in a
// tls.Config.
type Leaf struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey
	// DER is the raw certificate.
	DER []byte
}

// TLSCertificate converts the leaf into a tls.Certificate.
func (l *Leaf) TLSCertificate() tls.Certificate {
	return tls.Certificate{Certificate: [][]byte{l.DER}, PrivateKey: l.Key, Leaf: l.Cert}
}

// Issue creates a leaf certificate per opts.
func (ca *CA) Issue(opts IssueOptions) (*Leaf, error) {
	if len(opts.Names) == 0 {
		return nil, errors.New("pki: issue with no names")
	}
	now := opts.Now
	if now.IsZero() {
		now = time.Now()
	}
	nb, na := opts.NotBefore, opts.NotAfter
	if nb.IsZero() {
		nb = now.Add(-time.Hour)
	}
	if na.IsZero() {
		na = now.Add(90 * 24 * time.Hour)
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generating leaf key: %w", err)
	}
	ca.mu.Lock()
	ca.serial++
	serial := ca.serial
	ca.mu.Unlock()
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(serial),
		Subject:      pkix.Name{CommonName: opts.Names[0]},
		DNSNames:     opts.Names,
		NotBefore:    nb,
		NotAfter:     na,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
	}
	parent, signKey := ca.Cert, ca.Key
	if opts.SelfSigned {
		parent, signKey = tmpl, key
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, parent, &key.PublicKey, signKey)
	if err != nil {
		return nil, fmt.Errorf("pki: signing leaf for %v: %w", opts.Names, err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Leaf{Cert: cert, Key: key, DER: der}, nil
}

// Validate verifies a presented chain against roots for host at the given
// time and maps the result onto the Problem taxonomy.
func Validate(chain []*x509.Certificate, host string, roots *x509.CertPool, at time.Time) Problem {
	if len(chain) == 0 {
		return ProblemNoCertificate
	}
	leaf := chain[0]
	inter := x509.NewCertPool()
	for _, c := range chain[1:] {
		inter.AddCert(c)
	}
	_, err := leaf.Verify(x509.VerifyOptions{
		DNSName:       "", // name checked separately for a precise taxonomy
		Roots:         roots,
		Intermediates: inter,
		CurrentTime:   at,
		KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	})
	if err != nil {
		return ClassifyVerifyError(err, leaf)
	}
	if err := leaf.VerifyHostname(host); err != nil {
		return ProblemNameMismatch
	}
	return OK
}

// ClassifyVerifyError maps an x509/tls verification error (plus the leaf,
// when available) onto the Problem taxonomy.
func ClassifyVerifyError(err error, leaf *x509.Certificate) Problem {
	if err == nil {
		return OK
	}
	var invalid x509.CertificateInvalidError
	if errors.As(err, &invalid) && invalid.Reason == x509.Expired {
		return ProblemExpired
	}
	var hostErr x509.HostnameError
	if errors.As(err, &hostErr) {
		return ProblemNameMismatch
	}
	var unkAuth x509.UnknownAuthorityError
	if errors.As(err, &unkAuth) {
		if leaf != nil && isSelfIssued(leaf) {
			return ProblemSelfSigned
		}
		return ProblemUntrusted
	}
	// Fall back on string matching for tls-wrapped errors.
	msg := err.Error()
	switch {
	case strings.Contains(msg, "expired"):
		return ProblemExpired
	case strings.Contains(msg, "not valid for"), strings.Contains(msg, "doesn't contain"):
		return ProblemNameMismatch
	case strings.Contains(msg, "self-signed"), strings.Contains(msg, "self signed"):
		return ProblemSelfSigned
	case strings.Contains(msg, "no certificates"), strings.Contains(msg, "no common cipher"),
		strings.Contains(msg, "internal error"), strings.Contains(msg, "unrecognized name"):
		return ProblemNoCertificate
	}
	return ProblemUntrusted
}

func isSelfIssued(c *x509.Certificate) bool {
	return c.Subject.String() == c.Issuer.String()
}

// MatchHostname implements the RFC 6125 name matching MTA-STS relies on:
// an exact case-insensitive match, or a pattern whose leftmost label is "*"
// matching exactly one label. It is shared by the descriptor validator and
// by mx-pattern matching semantics tests.
func MatchHostname(pattern, host string) bool {
	pattern = strutil.CanonicalName(pattern)
	host = strutil.CanonicalName(host)
	if pattern == "" || host == "" {
		return false
	}
	if !strings.HasPrefix(pattern, "*.") {
		return pattern == host
	}
	rest := pattern[2:]
	i := strings.IndexByte(host, '.')
	if i < 0 {
		return false
	}
	return host[i+1:] == rest
}
