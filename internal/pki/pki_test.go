package pki

import (
	"crypto/tls"
	"crypto/x509"
	"net"
	"testing"
	"testing/quick"
	"time"
)

var testNow = time.Date(2024, 9, 29, 12, 0, 0, 0, time.UTC)

func newTestCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA("Test Root", testNow)
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	return ca
}

func TestIssueAndValidateOK(t *testing.T) {
	ca := newTestCA(t)
	leaf, err := ca.Issue(IssueOptions{Names: []string{"mta-sts.example.com"}, Now: testNow})
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	got := Validate([]*x509.Certificate{leaf.Cert}, "mta-sts.example.com", ca.Pool(), testNow)
	if got != OK {
		t.Errorf("Validate = %v, want OK", got)
	}
}

func TestValidateNameMismatch(t *testing.T) {
	ca := newTestCA(t)
	leaf, err := ca.Issue(IssueOptions{Names: []string{"www.example.com"}, Now: testNow})
	if err != nil {
		t.Fatal(err)
	}
	got := Validate([]*x509.Certificate{leaf.Cert}, "mta-sts.example.com", ca.Pool(), testNow)
	if got != ProblemNameMismatch {
		t.Errorf("Validate = %v, want name-mismatch", got)
	}
}

func TestValidateExpired(t *testing.T) {
	ca := newTestCA(t)
	leaf, err := ca.Issue(IssueOptions{
		Names:     []string{"mta-sts.example.com"},
		NotBefore: testNow.Add(-100 * 24 * time.Hour),
		NotAfter:  testNow.Add(-24 * time.Hour),
		Now:       testNow,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := Validate([]*x509.Certificate{leaf.Cert}, "mta-sts.example.com", ca.Pool(), testNow)
	if got != ProblemExpired {
		t.Errorf("Validate = %v, want expired", got)
	}
}

func TestValidateSelfSigned(t *testing.T) {
	ca := newTestCA(t)
	leaf, err := ca.Issue(IssueOptions{Names: []string{"mta-sts.example.com"}, SelfSigned: true, Now: testNow})
	if err != nil {
		t.Fatal(err)
	}
	got := Validate([]*x509.Certificate{leaf.Cert}, "mta-sts.example.com", ca.Pool(), testNow)
	if got != ProblemSelfSigned {
		t.Errorf("Validate = %v, want self-signed", got)
	}
}

func TestValidateUntrusted(t *testing.T) {
	ca := newTestCA(t)
	other, err := NewCA("Other Root", testNow)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := other.Issue(IssueOptions{Names: []string{"mta-sts.example.com"}, Now: testNow})
	if err != nil {
		t.Fatal(err)
	}
	got := Validate([]*x509.Certificate{leaf.Cert}, "mta-sts.example.com", ca.Pool(), testNow)
	if got != ProblemUntrusted {
		t.Errorf("Validate = %v, want untrusted", got)
	}
}

func TestValidateNoCertificate(t *testing.T) {
	ca := newTestCA(t)
	if got := Validate(nil, "x.example.com", ca.Pool(), testNow); got != ProblemNoCertificate {
		t.Errorf("Validate(nil) = %v", got)
	}
}

func TestWildcardCertificate(t *testing.T) {
	ca := newTestCA(t)
	leaf, err := ca.Issue(IssueOptions{Names: []string{"*.example.com"}, Now: testNow})
	if err != nil {
		t.Fatal(err)
	}
	if got := Validate([]*x509.Certificate{leaf.Cert}, "mta-sts.example.com", ca.Pool(), testNow); got != OK {
		t.Errorf("wildcard host = %v, want OK", got)
	}
	if got := Validate([]*x509.Certificate{leaf.Cert}, "a.b.example.com", ca.Pool(), testNow); got != ProblemNameMismatch {
		t.Errorf("deep host under wildcard = %v, want name-mismatch", got)
	}
}

func TestMatchHostname(t *testing.T) {
	cases := []struct {
		pattern, host string
		want          bool
	}{
		{"example.com", "example.com", true},
		{"Example.COM", "example.com.", true},
		{"example.com", "www.example.com", false},
		{"*.example.com", "mail.example.com", true},
		{"*.example.com", "example.com", false},
		{"*.example.com", "a.b.example.com", false},
		{"mail.*.com", "mail.example.com", false}, // wildcard only leftmost
		{"", "example.com", false},
		{"example.com", "", false},
		{"*.", "x.", false},
	}
	for _, c := range cases {
		if got := MatchHostname(c.pattern, c.host); got != c.want {
			t.Errorf("MatchHostname(%q, %q) = %v, want %v", c.pattern, c.host, got, c.want)
		}
	}
}

func TestProfileValidatorTaxonomy(t *testing.T) {
	host := "mta-sts.example.com"
	cases := []struct {
		name string
		p    CertProfile
		want Problem
	}{
		{"good", GoodProfile(testNow, host), OK},
		{"good wildcard", GoodProfile(testNow, "*.example.com"), OK},
		{"missing", MissingProfile(), ProblemNoCertificate},
		{"expired", ExpiredProfile(testNow, host), ProblemExpired},
		{"not yet valid", CertProfile{Names: []string{host},
			NotBefore: testNow.Add(24 * time.Hour), NotAfter: testNow.Add(48 * time.Hour)}, ProblemExpired},
		{"self-signed", SelfSignedProfile(testNow, host), ProblemSelfSigned},
		{"untrusted", CertProfile{Names: []string{host}, Untrusted: true,
			NotBefore: testNow.Add(-time.Hour), NotAfter: testNow.Add(time.Hour)}, ProblemUntrusted},
		{"name mismatch", GoodProfile(testNow, "www.example.com"), ProblemNameMismatch},
		{"self-signed wrong name reports self-signed", func() CertProfile {
			p := SelfSignedProfile(testNow, "other.example.net")
			return p
		}(), ProblemSelfSigned},
	}
	for _, c := range cases {
		if got := ValidateProfile(c.p, host, testNow); got != c.want {
			t.Errorf("%s: ValidateProfile = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestLiveAndProfileAgree checks the central substitution claim: for each
// failure mode, the live x509 path and the descriptor path yield the same
// Problem.
func TestLiveAndProfileAgree(t *testing.T) {
	ca := newTestCA(t)
	host := "mta-sts.example.com"
	type mode struct {
		name    string
		issue   IssueOptions
		profile CertProfile
	}
	modes := []mode{
		{"ok", IssueOptions{Names: []string{host}, Now: testNow}, GoodProfile(testNow, host)},
		{"expired", IssueOptions{Names: []string{host},
			NotBefore: testNow.Add(-48 * time.Hour), NotAfter: testNow.Add(-24 * time.Hour), Now: testNow},
			ExpiredProfile(testNow, host)},
		{"self-signed", IssueOptions{Names: []string{host}, SelfSigned: true, Now: testNow},
			SelfSignedProfile(testNow, host)},
		{"name-mismatch", IssueOptions{Names: []string{"wrong.example.com"}, Now: testNow},
			GoodProfile(testNow, "wrong.example.com")},
	}
	for _, m := range modes {
		leaf, err := ca.Issue(m.issue)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		live := Validate([]*x509.Certificate{leaf.Cert}, host, ca.Pool(), testNow)
		desc := ValidateProfile(m.profile, host, testNow)
		if live != desc {
			t.Errorf("%s: live=%v profile=%v", m.name, live, desc)
		}
	}
}

// TestTLSHandshakeClassification drives a real TLS handshake and checks
// that the client-side error classifies onto the taxonomy.
func TestTLSHandshakeClassification(t *testing.T) {
	ca := newTestCA(t)
	leaf, err := ca.Issue(IssueOptions{Names: []string{"mta-sts.example.com"}, SelfSigned: true})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", &tls.Config{
		Certificates: []tls.Certificate{leaf.TLSCertificate()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				tc := c.(*tls.Conn)
				tc.Handshake()
				tc.Close()
			}(conn)
		}
	}()
	conn, err := tls.Dial("tcp", ln.Addr().String(), &tls.Config{
		RootCAs:    ca.Pool(),
		ServerName: "mta-sts.example.com",
	})
	if err == nil {
		conn.Close()
		t.Fatal("handshake with self-signed cert unexpectedly succeeded")
	}
	if got := ClassifyVerifyError(err, leaf.Cert); got != ProblemSelfSigned {
		t.Errorf("ClassifyVerifyError = %v (err=%v), want self-signed", got, err)
	}
}

func TestIssueRejectsNoNames(t *testing.T) {
	ca := newTestCA(t)
	if _, err := ca.Issue(IssueOptions{}); err == nil {
		t.Error("Issue with no names should fail")
	}
}

func TestProblemString(t *testing.T) {
	for p, want := range map[Problem]string{
		OK: "ok", ProblemExpired: "expired", ProblemSelfSigned: "self-signed",
		ProblemUntrusted: "untrusted", ProblemNameMismatch: "name-mismatch",
		ProblemNoCertificate: "no-certificate", Problem(99): "problem(99)",
	} {
		if p.String() != want {
			t.Errorf("Problem(%d).String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if !OK.Valid() || ProblemExpired.Valid() {
		t.Error("Valid() mismatch")
	}
}

// Property: MatchHostname is reflexive for plain names (no wildcard).
func TestMatchHostnameReflexive(t *testing.T) {
	f := func(s string) bool {
		if s == "" || s[0] == '*' {
			return true
		}
		return MatchHostname(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
