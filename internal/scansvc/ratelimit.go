package scansvc

import (
	"sync"
	"time"
)

// TenantLimiter is a per-tenant token bucket over submitted domains:
// admitting a job costs one token per domain, buckets refill at Rate
// tokens per second up to Burst. Admission is non-blocking — a tenant
// over budget is rejected (HTTP 429) rather than queued, so one noisy
// tenant cannot grow the durable queue without bound.
type TenantLimiter struct {
	// Rate is tokens (domains) per second per tenant; Burst the bucket
	// capacity. Rate <= 0 disables limiting entirely.
	Rate  float64
	Burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewTenantLimiter builds a limiter; rate <= 0 disables limiting.
func NewTenantLimiter(rate, burst float64) *TenantLimiter {
	return &TenantLimiter{Rate: rate, Burst: burst, buckets: make(map[string]*bucket)}
}

// Admit consumes cost tokens from the tenant's bucket, reporting
// whether the submission is within budget. A nil limiter, a
// non-positive rate, or a cost beyond Burst against a full fresh
// bucket... the first two always admit; the last always rejects
// (the job can never fit, better to say so at once).
func (l *TenantLimiter) Admit(tenant string, cost int) bool {
	if l == nil || l.Rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: l.Burst, last: now}
		l.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.Rate
	if b.tokens > l.Burst {
		b.tokens = l.Burst
	}
	b.last = now
	if float64(cost) > b.tokens {
		return false
	}
	b.tokens -= float64(cost)
	return true
}
