package scansvc

import (
	"crypto/x509"
	"fmt"
	"os"
	"time"

	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/retry"
	"github.com/netsecurelab/mtasts/internal/scanner"
)

// RunnerSpec is the CLI-shaped description of a scanner.Runner: worker
// counts as flag values rather than built pools. The commands parse
// flags into a spec and Build turns it into a configured Runner — the
// logic cmd/mtasts-scan and the service previously had to agree on by
// copy.
type RunnerSpec struct {
	// Workers sizes the flat pool (and "auto" staged pools). 16 if 0.
	Workers int
	// StageWorkers, when non-empty, selects the staged pipeline with
	// these per-stage pool sizes ("dns=16,fetch=8,probe=32"; "auto"
	// sizes every stage from Workers).
	StageWorkers string
	// Dedup collapses duplicate in-flight policy fetches and MX probes
	// (implies the staged pipeline).
	Dedup bool
}

// Build assembles the Runner for one run over the given scanner and
// telemetry. It validates StageWorkers; an invalid spec is a user
// error, reported rather than panicked.
func (sp RunnerSpec) Build(scan scanner.Scanner, reg *obs.Registry, events *obs.EventSink) (*scanner.Runner, error) {
	workers := sp.Workers
	if workers <= 0 {
		workers = 16
	}
	r := &scanner.Runner{Workers: workers, Scan: scan, Obs: reg, Events: events}
	if sp.StageWorkers != "" || sp.Dedup {
		sw, err := scanner.ParseStageWorkers(sp.StageWorkers)
		if err != nil {
			return nil, err
		}
		r.Pipelined = true
		r.StageWorkers = sw
		r.Dedup = sp.Dedup
	}
	return r, nil
}

// LiveSpec is the CLI-shaped description of the live scan stack
// (resolver + rate limit + retry budget + scanner.Live) that
// cmd/mtasts-scan assembles and cmd/mtasts-serve reuses for live-socket
// jobs.
type LiveSpec struct {
	// DNSAddr is the recursive resolver, host:port. Required.
	DNSAddr string
	// Rate caps DNS queries per second (0 = unlimited).
	Rate float64
	// HTTPSPort and SMTPPort default to 443 and 25.
	HTTPSPort int
	SMTPPort  int
	// Timeout is the per-probe timeout (scanner default if 0).
	Timeout time.Duration
	// Retries is attempts per network operation (1 = no retries);
	// RetryBase the first backoff delay; RetryBudget the total retries
	// allowed across the run (0 = unlimited).
	Retries     int
	RetryBase   time.Duration
	RetryBudget int64
	// CAFile, when non-empty, adds PEM roots to the trust store (e.g.
	// mtasts-host -ca-out).
	CAFile string
	// HeloName is the EHLO identity for SMTP probes.
	HeloName string
}

// Build assembles the live scanner, sharing one retry budget across
// every layer (DNS, policy fetch, SMTP probes) so a pathological
// population cannot multiply the scan cost.
func (sp LiveSpec) Build(reg *obs.Registry, events *obs.EventSink) (*scanner.Live, error) {
	if sp.DNSAddr == "" {
		return nil, fmt.Errorf("scansvc: live scan needs a DNS server address")
	}
	var roots *x509.CertPool
	if sp.CAFile != "" {
		pem, err := os.ReadFile(sp.CAFile)
		if err != nil {
			return nil, fmt.Errorf("scansvc: reading CA file: %w", err)
		}
		roots = x509.NewCertPool()
		if !roots.AppendCertsFromPEM(pem) {
			return nil, fmt.Errorf("scansvc: no certificates found in %s", sp.CAFile)
		}
	}
	var budget *retry.Budget
	if sp.RetryBudget > 0 {
		budget = retry.NewBudget(sp.RetryBudget)
	}
	dns := resolver.New(sp.DNSAddr)
	dns.Obs = reg
	dns.MaxAttempts = sp.Retries
	dns.RetryBase = sp.RetryBase
	dns.RetryBudget = budget
	if sp.Rate > 0 {
		dns.Limiter = resolver.NewRateLimiter(sp.Rate, 10)
	}
	httpsPort := sp.HTTPSPort
	if httpsPort == 0 {
		httpsPort = 443
	}
	smtpPort := sp.SMTPPort
	if smtpPort == 0 {
		smtpPort = 25
	}
	helo := sp.HeloName
	if helo == "" {
		helo = "mtasts-scan.invalid"
	}
	return &scanner.Live{
		DNS:         dns,
		Roots:       roots,
		HTTPSPort:   httpsPort,
		SMTPPort:    smtpPort,
		HeloName:    helo,
		Timeout:     sp.Timeout,
		Obs:         reg,
		Events:      events,
		MaxAttempts: sp.Retries,
		RetryBase:   sp.RetryBase,
		RetryBudget: budget,
	}, nil
}
