package scansvc

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/netsecurelab/mtasts/internal/store"
)

// State is a job's lifecycle position. Transitions only move forward:
// pending → running → one of done/failed/canceled; a crash mid-run
// leaves the stored state at running, which Start treats as "resume me"
// (docs/SERVICE.md "Job lifecycle").
type State string

// Job lifecycle states.
const (
	StatePending  State = "pending"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a job in this state will never run again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one queued scan: a tenant-submitted domain list working its
// way through the durable queue. The struct is the stored form and the
// API wire form at once.
type Job struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	State  State  `json:"state"`
	// Domains is the submitted domain count (the list itself is stored
	// separately under the domains key).
	Domains int `json:"domains"`
	// Shards is how many checkpointed shards the job's scan uses.
	Shards int `json:"shards,omitempty"`
	// Error carries the failure message for StateFailed.
	Error string `json:"error,omitempty"`
	// SubmittedAt/FinishedAt bound the job's wall-clock life. Stored
	// UTC; FinishedAt is zero until a terminal state.
	SubmittedAt time.Time `json:"submitted_at"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
}

// Store key layout, under its own svc/ root so a service store can
// coexist with campaign data (campaign keys live under c/):
//
//	svc/job/<id>                 Job JSON (the queue's durable state)
//	svc/dom/<id>                 submitted domain list, JSON array
//	svc/rpt/<domain>/<window>/<report-id>  ingested TLSRPT report JSON
//
// Job scan results live under the campaign layout (c/<id>/...): each
// job runs as a single-week campaign whose campaign ID is the job ID,
// inheriting its shard checkpoints, crash-resume and canonical
// snapshot encoding.
const (
	jobKeyPrefix = "svc/job/"
	domKeyPrefix = "svc/dom/"
	rptKeyPrefix = "svc/rpt/"
	resultsWeek  = 0
)

func jobKey(id string) string { return jobKeyPrefix + id }
func domKey(id string) string { return domKeyPrefix + id }

// rptDomainPrefix is the scan prefix holding every stored report window
// for one policy domain.
func rptDomainPrefix(domain string) string { return rptKeyPrefix + domain + "/" }

func rptKey(domain, window, reportID string) string {
	return rptDomainPrefix(domain) + window + "/" + reportID
}

// putJob persists a job's state. Sync is the caller's choice: state
// transitions that gate resume semantics sync, list-only cosmetics may
// not.
func putJob(s store.Store, j *Job, sync bool) error {
	v, err := json.Marshal(j)
	if err != nil {
		return err
	}
	if err := s.Put(jobKey(j.ID), v); err != nil {
		return err
	}
	if sync {
		return s.Sync()
	}
	return nil
}

// getJob loads one job by ID.
func getJob(s store.Store, id string) (*Job, bool, error) {
	v, ok, err := s.Get(jobKey(id))
	if err != nil || !ok {
		return nil, ok, err
	}
	var j Job
	if err := json.Unmarshal(v, &j); err != nil {
		return nil, true, fmt.Errorf("scansvc: corrupt job record %s: %w", id, err)
	}
	return &j, true, nil
}

// getDomains loads a job's submitted domain list.
func getDomains(s store.Store, id string) ([]string, error) {
	v, ok, err := s.Get(domKey(id))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("scansvc: job %s has no stored domain list", id)
	}
	var out []string
	if err := json.Unmarshal(v, &out); err != nil {
		return nil, fmt.Errorf("scansvc: corrupt domain list for %s: %w", id, err)
	}
	return out, nil
}

// jobID renders a sequence number as a job ID (j000001, j000002, ...).
// IDs are fixed-width so store scans list jobs in submission order; the
// width bounds a store at one million jobs, far beyond what a single
// disk store holds.
func jobID(seq int) string { return fmt.Sprintf("j%06d", seq) }

// jobSeq parses an ID back to its sequence number (0 for foreign keys).
// Start uses it to recover the allocator's high-water mark from the
// stored jobs themselves: every acknowledged job is durable, so the max
// stored ID is exactly the last ID handed out.
func jobSeq(id string) int {
	if len(id) != 7 || id[0] != 'j' {
		return 0
	}
	n := 0
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}
