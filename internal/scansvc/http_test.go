package scansvc

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/errtax"
	"github.com/netsecurelab/mtasts/internal/store"
	"github.com/netsecurelab/mtasts/internal/tlsrpt"
)

// apiCall drives one request against the service handler and decodes a
// JSON response into out (skipped when out is nil).
func apiCall(t *testing.T, h http.Handler, method, path, body string, wantStatus int, out any) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("%s %s = %d, want %d; body: %s", method, path, rec.Code, wantStatus, rec.Body.String())
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding response: %v\n%s", method, path, err, rec.Body.String())
		}
	}
}

// testReportJSON renders a report attributing sessions to domain.
func testReportJSON(t *testing.T, id, domain string, success, failure int64) string {
	t.Helper()
	r := tlsrpt.NewReport("Test Org", "tls@test.example", id,
		time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2026, 8, 2, 0, 0, 0, 0, time.UTC))
	r.AddSuccess(tlsrpt.PolicyTypeSTS, domain, success)
	if failure > 0 {
		r.AddFailure(tlsrpt.PolicyTypeSTS, domain, tlsrpt.ResultCertificateExpired, "mx."+domain, failure)
	}
	data, err := r.Marshal()
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return string(data)
}

func TestHTTPJobLifecycle(t *testing.T) {
	svc := newTestService(t, store.NewMem(), nil)
	h := svc.Handler()
	_, names := worldScan()

	// Submit.
	body, err := json.Marshal(submitRequest{Tenant: "acme", Domains: names[:24]})
	if err != nil {
		t.Fatal(err)
	}
	var j Job
	apiCall(t, h, "POST", "/api/v1/jobs", string(body), http.StatusAccepted, &j)
	if j.ID == "" || j.Tenant != "acme" || j.Domains != 24 {
		t.Fatalf("submitted job = %+v", j)
	}

	// Poll the job endpoint to done.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var got Job
		apiCall(t, h, "GET", "/api/v1/jobs/"+j.ID, "", http.StatusOK, &got)
		if got.State == StateDone {
			break
		}
		if got.State.Terminal() {
			t.Fatalf("job ended %s: %s", got.State, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// List.
	var jobs []Job
	apiCall(t, h, "GET", "/api/v1/jobs", "", http.StatusOK, &jobs)
	if len(jobs) != 1 || jobs[0].ID != j.ID {
		t.Fatalf("list = %+v", jobs)
	}

	// Ingest a TLSRPT report for one scanned domain, then join.
	target := names[0]
	apiCall(t, h, "POST", "/api/v1/tlsrpt",
		testReportJSON(t, "r1", target, 100, 4), http.StatusAccepted, nil)

	req := httptest.NewRequest("GET", "/api/v1/jobs/"+j.ID+"/results?join=tlsrpt", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("joined results = %d: %s", rec.Code, rec.Body.String())
	}
	var joined, withRPT int
	sc := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			Scan   json.RawMessage `json:"scan"`
			TLSRPT *TLSRPTSummary  `json:"tlsrpt"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("joined line does not parse: %v\n%s", err, sc.Text())
		}
		if len(line.Scan) == 0 {
			t.Fatalf("joined line without scan record: %s", sc.Text())
		}
		joined++
		if line.TLSRPT != nil {
			withRPT++
			if line.TLSRPT.Success != 100 || line.TLSRPT.Failure != 4 {
				t.Fatalf("joined TLSRPT = %+v", line.TLSRPT)
			}
		}
	}
	if joined != 24 {
		t.Fatalf("joined stream holds %d lines, want 24", joined)
	}
	if withRPT != 1 {
		t.Fatalf("%d joined lines carry TLSRPT evidence, want exactly 1 (%s)", withRPT, target)
	}

	// Plain results must not carry the join wrapper.
	req = httptest.NewRequest("GET", "/api/v1/jobs/"+j.ID+"/results", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if bytes.Contains(rec.Body.Bytes(), []byte(`"scan"`)) {
		t.Fatal("plain results are join-wrapped")
	}

	// TLSRPT per-domain endpoint.
	var rpt struct {
		Domain  string            `json:"domain"`
		Summary TLSRPTSummary     `json:"summary"`
		Reports []json.RawMessage `json:"reports"`
	}
	apiCall(t, h, "GET", "/api/v1/tlsrpt/"+target, "", http.StatusOK, &rpt)
	if rpt.Summary.Reports != 1 || rpt.Summary.Success != 100 || len(rpt.Reports) != 1 {
		t.Fatalf("tlsrpt endpoint = %+v", rpt)
	}
}

func TestHTTPErrors(t *testing.T) {
	svc := newTestService(t, store.NewMem(), func(sv *Service) {
		sv.Tenants = NewTenantLimiter(1, 4)
	})
	h := svc.Handler()

	apiCall(t, h, "GET", "/api/v1/jobs/j999999", "", http.StatusNotFound, nil)
	apiCall(t, h, "POST", "/api/v1/jobs", `{"bogus": true}`, http.StatusBadRequest, nil)
	apiCall(t, h, "POST", "/api/v1/jobs", `{"domains": []}`, http.StatusBadRequest, nil)

	// Rate limit → 429.
	apiCall(t, h, "POST", "/api/v1/jobs", `{"tenant":"t","domains":["a.example","b.example"]}`,
		http.StatusAccepted, nil)
	var e apiError
	apiCall(t, h, "POST", "/api/v1/jobs", `{"tenant":"t","domains":["c.example","d.example","e.example"]}`,
		http.StatusTooManyRequests, &e)
	if e.Error == "" {
		t.Fatal("429 without error body")
	}

	// Malformed TLSRPT → 400 with the typed code on the wire.
	apiCall(t, h, "POST", "/api/v1/tlsrpt", `{"report-id":""}`, http.StatusBadRequest, &e)
	if e.Code != string(errtax.CodeReportMissingID) {
		t.Fatalf("tlsrpt rejection code = %q, want %q", e.Code, errtax.CodeReportMissingID)
	}
	apiCall(t, h, "GET", "/api/v1/tlsrpt/nothing.example", "", http.StatusNotFound, nil)
}

// TestEndpointsTableMatchesMux locks the Endpoints table to the mux in
// the code direction: every row must resolve to its own handler (the
// docs direction lives in internal/docscheck).
func TestEndpointsTableMatchesMux(t *testing.T) {
	svc := newTestService(t, store.NewMem(), nil)
	h := svc.Handler()
	for _, e := range Endpoints {
		path := e.Pattern
		path = strings.ReplaceAll(path, "{id}", "j000001")
		path = strings.ReplaceAll(path, "{domain}", "a.example")
		req := httptest.NewRequest(e.Method, path, strings.NewReader("{}"))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code == http.StatusNotFound && !strings.Contains(rec.Body.String(), "scansvc:") {
			t.Errorf("%s %s: mux does not route (plain 404)", e.Method, e.Pattern)
		}
		if rec.Code == http.StatusMethodNotAllowed {
			t.Errorf("%s %s: method not allowed", e.Method, e.Pattern)
		}
	}
	if len(Endpoints) != 7 {
		t.Fatalf("Endpoints table has %d rows; update docs/SERVICE.md and this count together", len(Endpoints))
	}
	for i, e := range Endpoints {
		if e.Doc == "" {
			t.Errorf("endpoint %d (%s %s) has no doc line", i, e.Method, e.Pattern)
		}
	}
}
