package scansvc

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/netsecurelab/mtasts/internal/campaign"
	"github.com/netsecurelab/mtasts/internal/tlsrpt"
)

// IngestTLSRPT validates one RFC 8460 aggregate report and stores it
// keyed by (policy domain, reporting window, report-id) — one copy per
// policy domain the report covers, so the per-domain join is a single
// prefix scan. Re-POSTing the same report overwrites its own keys
// (idempotent ingestion). Rejections carry errtax report_* codes.
func (s *Service) IngestTLSRPT(data []byte) (*tlsrpt.Report, error) {
	r, err := tlsrpt.IngestReport(data)
	if err != nil {
		s.Obs.Counter("tlsrpt.ingest.rejected").Inc()
		return nil, err
	}
	window := r.DateRange.WindowKey()
	// Store the canonical re-marshal, not the submitted bytes, so
	// stored reports always re-parse.
	canonical, err := r.Marshal()
	if err != nil {
		return nil, err
	}
	for _, d := range r.Domains() {
		if strings.Contains(d, "/") {
			s.Obs.Counter("tlsrpt.ingest.rejected").Inc()
			return nil, fmt.Errorf("scansvc: policy domain %q cannot hold a slash", d)
		}
		if err := s.Store.Put(rptKey(d, window, r.ReportID), canonical); err != nil {
			return nil, err
		}
	}
	if err := s.Store.Sync(); err != nil {
		return nil, err
	}
	s.Obs.Counter("tlsrpt.ingest.accepted").Inc()
	if s.Events != nil {
		s.Events.Emit("tlsrpt.report.ingested", map[string]any{
			"report_id": r.ReportID, "window": window, "domains": r.Domains(),
		})
	}
	return r, nil
}

// TLSRPTSummary aggregates every stored report section for one policy
// domain — the operator-side evidence joined against scan verdicts.
type TLSRPTSummary struct {
	// Reports is the stored report count covering the domain.
	Reports int `json:"reports"`
	// Success/Failure total the sessions across all windows and policy
	// types.
	Success int64 `json:"success"`
	Failure int64 `json:"failure"`
	// ResultTypes counts failed sessions per RFC 8460 result-type.
	ResultTypes map[string]int64 `json:"result_types,omitempty"`
}

// TLSRPTFor folds the stored reports for one domain into a summary.
// ok is false when no report covers the domain.
func (s *Service) TLSRPTFor(domain string) (TLSRPTSummary, bool, error) {
	sum := TLSRPTSummary{}
	err := s.Store.Scan(rptDomainPrefix(domain), func(_ string, v []byte) error {
		var r tlsrpt.Report
		if err := json.Unmarshal(v, &r); err != nil {
			return fmt.Errorf("scansvc: corrupt stored report for %s: %w", domain, err)
		}
		sum.Reports++
		for _, p := range r.Policies {
			if p.Policy.PolicyDomain != domain {
				continue
			}
			sum.Success += p.Summary.TotalSuccessfulSessionCount
			sum.Failure += p.Summary.TotalFailureSessionCount
			for _, fd := range p.FailureDetails {
				if sum.ResultTypes == nil {
					sum.ResultTypes = make(map[string]int64)
				}
				sum.ResultTypes[string(fd.ResultType)] += fd.FailedSessionCount
			}
		}
		return nil
	})
	if err != nil {
		return TLSRPTSummary{}, false, err
	}
	return sum, sum.Reports > 0, nil
}

// ListTLSRPT returns the stored report documents covering one domain,
// in (window, report-id) order.
func (s *Service) ListTLSRPT(domain string) ([]json.RawMessage, error) {
	var out []json.RawMessage
	err := s.Store.Scan(rptDomainPrefix(domain), func(_ string, v []byte) error {
		out = append(out, json.RawMessage(append([]byte(nil), v...)))
		return nil
	})
	return out, err
}

// WriteResults streams a job's per-domain results as JSONL. Plain
// (join=false) output re-emits each stored record's canonical bytes —
// byte-identical across crash-resumed and uninterrupted runs, the
// contract smoke-serve enforces. With join=true each line wraps the
// record together with the domain's TLSRPT evidence:
//
//	{"scan": <record>, "tlsrpt": {...}}   (tlsrpt omitted when none)
func (s *Service) WriteResults(w io.Writer, id string, join bool) error {
	if !join {
		return campaign.WriteSnapshot(w, s.Store, id, resultsWeek)
	}
	return campaign.ScanWeek(s.Store, id, resultsWeek, func(raw []byte, rec campaign.DomainRecord) error {
		line := struct {
			Scan   json.RawMessage `json:"scan"`
			TLSRPT *TLSRPTSummary  `json:"tlsrpt,omitempty"`
		}{Scan: raw}
		sum, ok, err := s.TLSRPTFor(rec.Domain)
		if err != nil {
			return err
		}
		if ok {
			line.TLSRPT = &sum
		}
		v, err := json.Marshal(line)
		if err != nil {
			return err
		}
		if _, err := w.Write(v); err != nil {
			return err
		}
		_, err = w.Write([]byte{'\n'})
		return err
	})
}
