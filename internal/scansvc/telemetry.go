package scansvc

import (
	"fmt"
	"io"
	"os"

	"github.com/netsecurelab/mtasts/internal/dataset"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/report"
)

// TelemetryConfig selects the observability outputs a run wants. The
// zero value disables everything: the registry stays nil and the scan
// pipeline pays only nil checks.
type TelemetryConfig struct {
	// MetricsAddr, when non-empty, serves /metrics and
	// /debug/scanprogress on this host:port for the lifetime of the
	// Telemetry.
	MetricsAddr string
	// EventsPath, when non-empty, appends JSONL events to this file.
	EventsPath string
}

// Telemetry is the run-scoped observability bundle the commands used to
// assemble by hand: registry, event sink, and metrics listener, torn
// down together by Close.
type Telemetry struct {
	// Obs is nil when the config enabled nothing — safe to pass
	// everywhere, the obs package is nil-tolerant.
	Obs    *obs.Registry
	Events *obs.EventSink
	// Server is the metrics listener (nil unless MetricsAddr was set);
	// Server.Addr() is the bound address.
	Server *obs.Server

	eventsFile *os.File
}

// StartTelemetry builds the bundle: a registry if anything is enabled,
// an appending JSONL sink for EventsPath, and a bound metrics server
// for MetricsAddr. On error nothing is left running.
func StartTelemetry(cfg TelemetryConfig) (*Telemetry, error) {
	t := &Telemetry{}
	if cfg.MetricsAddr == "" && cfg.EventsPath == "" {
		return t, nil
	}
	t.Obs = obs.NewRegistry()
	if cfg.EventsPath != "" {
		f, err := os.OpenFile(cfg.EventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("scansvc: opening events file: %w", err)
		}
		t.eventsFile = f
		t.Events = obs.NewEventSink(f)
	}
	if cfg.MetricsAddr != "" {
		srv, err := t.Obs.Serve(cfg.MetricsAddr)
		if err != nil {
			if t.eventsFile != nil {
				//lint:ignore errdrop unwinding a failed start; the Serve error is the one to report
				t.eventsFile.Close()
			}
			return nil, err
		}
		t.Server = srv
	}
	return t, nil
}

// Close stops the metrics listener and closes the events file. Safe on
// a zero-config bundle.
func (t *Telemetry) Close() error {
	var first error
	if t.Server != nil {
		first = t.Server.Close()
	}
	if t.eventsFile != nil {
		if err := t.eventsFile.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WriteSummary prints the end-of-run "Observability summary" table the
// commands share — every metric's summary row plus the dropped-events
// count when the sink lost any. No-op without a registry.
func (t *Telemetry) WriteSummary(w io.Writer) {
	if t.Obs == nil {
		return
	}
	tbl := &dataset.Table{Title: "Observability summary", Headers: []string{"metric", "value"}}
	for _, row := range t.Obs.Snapshot().SummaryRows() {
		tbl.AddRow(row[0], row[1])
	}
	if t.Events != nil && t.Events.Dropped() > 0 {
		tbl.AddRow("events.dropped", t.Events.Dropped())
	}
	report.WriteTable(w, tbl)
}
