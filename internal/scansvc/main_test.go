package scansvc

import (
	"testing"

	"github.com/netsecurelab/mtasts/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running:
// every service worker, metrics listener and in-flight job spawned
// here must be joined by the time its test returns.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
