package scansvc

import (
	"bytes"
	"context"
	"sort"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/campaign"
	"github.com/netsecurelab/mtasts/internal/experiments"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/simnet"
	"github.com/netsecurelab/mtasts/internal/store"
)

// testWorld is the shared small simnet world; the artifact scanner it
// yields is deterministic, so job results are reproducible across
// service restarts — the property the crash-resume tests assert.
var testWorld = simnet.Generate(simnet.Config{Seed: 11, Scale: 0.02})

// slowScanner delays each domain so tests can reliably observe a job
// mid-run (cancel, shutdown); results are unchanged, so determinism
// holds.
type slowScanner struct {
	inner scanner.Scanner
	delay time.Duration
}

func (s slowScanner) ScanDomain(ctx context.Context, d string) scanner.DomainResult {
	select {
	case <-ctx.Done():
	case <-time.After(s.delay):
	}
	return s.inner.ScanDomain(ctx, d)
}

// worldScan returns the deterministic scanner and sorted population of
// the test world's first component-scan snapshot.
func worldScan() (scanner.Scanner, []string) {
	src, scan := experiments.SnapshotSource(testWorld, experiments.WeekSnapshot(0))
	var names []string
	src(func(d string) error { //nolint:errcheck // slice source never fails
		names = append(names, d)
		return nil
	})
	sort.Strings(names)
	return scan, names
}

// newTestService builds a started service over the given store; the
// cleanup closes it.
func newTestService(t *testing.T, s store.Store, mutate func(*Service)) *Service {
	t.Helper()
	scan, _ := worldScan()
	svc := &Service{Store: s, Scan: scan, Runner: RunnerSpec{Workers: 8}, ShardSize: 16}
	if mutate != nil {
		mutate(svc)
	}
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// waitState polls until the job reaches a terminal state (or the given
// state) or the deadline passes.
func waitState(t *testing.T, svc *Service, id string, want State) *Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok, err := svc.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if ok && (j.State == want || (want == "" && j.State.Terminal())) {
			return j
		}
		time.Sleep(10 * time.Millisecond)
	}
	j, _, _ := svc.Get(id)
	t.Fatalf("job %s never reached %q (now %+v)", id, want, j)
	return nil
}

func TestSubmitRunsToDone(t *testing.T) {
	s := store.NewMem()
	svc := newTestService(t, s, nil)
	_, names := worldScan()

	j, err := svc.Submit("acme", names[:40])
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.State != StatePending || j.Domains != 40 || j.ID != "j000001" {
		t.Fatalf("acknowledged job = %+v", j)
	}
	done := waitState(t, svc, j.ID, StateDone)
	if done.FinishedAt.IsZero() {
		t.Error("done job has zero FinishedAt")
	}

	var buf bytes.Buffer
	if err := svc.WriteResults(&buf, j.ID, false); err != nil {
		t.Fatalf("WriteResults: %v", err)
	}
	if got := bytes.Count(buf.Bytes(), []byte{'\n'}); got != 40 {
		t.Fatalf("results hold %d lines, want 40", got)
	}

	jobs, err := svc.List()
	if err != nil || len(jobs) != 1 || jobs[0].ID != j.ID {
		t.Fatalf("List = %v, %v", jobs, err)
	}
}

func TestSubmitValidation(t *testing.T) {
	svc := newTestService(t, store.NewMem(), nil)
	if _, err := svc.Submit("acme", nil); err == nil {
		t.Error("empty domain list accepted")
	}
	if _, err := svc.Submit("acme", []string{"a.example", "bad/domain"}); err == nil {
		t.Error("slash domain accepted")
	}
	if _, err := svc.Submit("acme", []string{""}); err == nil {
		t.Error("empty domain accepted")
	}
}

// TestCrashResumeByteIdentical is the queue-level half of the
// smoke-serve contract: a job stopped mid-run by the crash drill and
// restarted on a fresh service over the same store completes with
// results byte-identical to an uninterrupted job over the same
// population.
func TestCrashResumeByteIdentical(t *testing.T) {
	scan, names := worldScan()
	population := names[:64] // 4 shards at ShardSize 16

	// Reference: uninterrupted run on its own store.
	refStore := store.NewMem()
	ref := newTestService(t, refStore, nil)
	rj, err := ref.Submit("acme", population)
	if err != nil {
		t.Fatalf("ref Submit: %v", err)
	}
	waitState(t, ref, rj.ID, StateDone)
	var want bytes.Buffer
	if err := ref.WriteResults(&want, rj.ID, false); err != nil {
		t.Fatalf("ref results: %v", err)
	}

	// Drilled: stop after 2 of 4 shards, "crash" (Close), restart.
	s := store.NewMem()
	svc := &Service{Store: s, Scan: scan, Runner: RunnerSpec{Workers: 8},
		ShardSize: 16, StopAfterShards: 2}
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	j, err := svc.Submit("acme", population)
	if err != nil {
		svc.Close()
		t.Fatalf("Submit: %v", err)
	}
	select {
	case err := <-svc.Fatal():
		if err == nil || !bytes.Contains([]byte(err.Error()), []byte("stopped")) {
			t.Fatalf("drill error = %v", err)
		}
	case <-time.After(30 * time.Second):
		svc.Close()
		t.Fatal("drill never fired")
	}
	svc.Close()

	// The interrupted job must still be stored as running.
	mid, ok, err := getJob(s, j.ID)
	if err != nil || !ok {
		t.Fatalf("job vanished after drill: %v", err)
	}
	if mid.State != StateRunning {
		t.Fatalf("post-crash state = %s, want running", mid.State)
	}

	// Restart without the drill; Start must re-queue and the job must
	// complete.
	svc2 := newTestService(t, s, nil)
	waitState(t, svc2, j.ID, StateDone)
	var got bytes.Buffer
	if err := svc2.WriteResults(&got, j.ID, false); err != nil {
		t.Fatalf("resumed results: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("resumed results differ from uninterrupted run:\nresumed %d bytes, reference %d bytes",
			got.Len(), want.Len())
	}
}

func TestCancelPendingJob(t *testing.T) {
	s := store.NewMem()
	// MaxConcurrent 1 and a slow first job so the second stays pending.
	svc := newTestService(t, s, func(sv *Service) {
		sv.MaxConcurrent = 1
		sv.Scan = slowScanner{inner: sv.Scan, delay: 5 * time.Millisecond}
	})
	_, names := worldScan()

	j1, err := svc.Submit("acme", names[:48])
	if err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	j2, err := svc.Submit("acme", names[:16])
	if err != nil {
		t.Fatalf("Submit 2: %v", err)
	}
	if _, err := svc.Cancel(j2.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	got := waitState(t, svc, j2.ID, StateCanceled)
	if got.State != StateCanceled {
		t.Fatalf("state = %s", got.State)
	}
	// The canceled job must never produce results.
	waitState(t, svc, j1.ID, StateDone)
	var buf bytes.Buffer
	if err := svc.WriteResults(&buf, j2.ID, false); err != nil {
		t.Fatalf("WriteResults: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("canceled job has %d bytes of results", buf.Len())
	}
}

func TestTenantRateLimit(t *testing.T) {
	svc := newTestService(t, store.NewMem(), func(sv *Service) {
		sv.Tenants = NewTenantLimiter(1, 20) // 20-domain burst, 1/s refill
	})
	_, names := worldScan()

	if _, err := svc.Submit("noisy", names[:16]); err != nil {
		t.Fatalf("first submission within burst rejected: %v", err)
	}
	if _, err := svc.Submit("noisy", names[:16]); err == nil {
		t.Fatal("second submission over budget admitted")
	}
	// A different tenant has its own bucket.
	if _, err := svc.Submit("quiet", names[:16]); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
}

func TestResumeRecoversPendingJobs(t *testing.T) {
	s := store.NewMem()
	scan, names := worldScan()

	// Seed the store with a pending job no service has touched — the
	// shape left behind by a crash between Submit's sync and dispatch.
	seed := &Service{Store: s, Scan: scan}
	if err := seed.Start(); err != nil {
		t.Fatalf("seed Start: %v", err)
	}
	j, err := seed.Submit("acme", names[:8])
	if err != nil {
		t.Fatalf("seed Submit: %v", err)
	}
	// Close immediately; the job may or may not have started.
	seed.Close()

	svc := newTestService(t, s, nil)
	waitState(t, svc, j.ID, StateDone)
}

// TestEngineKeyCompatibility pins the job↔campaign bridge: results are
// readable through the campaign API under the job ID.
func TestEngineKeyCompatibility(t *testing.T) {
	s := store.NewMem()
	svc := newTestService(t, s, nil)
	_, names := worldScan()
	j, err := svc.Submit("acme", names[:8])
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, svc, j.ID, StateDone)
	sum, err := campaign.Aggregate(s, j.ID, 0)
	if err != nil {
		t.Fatalf("campaign.Aggregate over job results: %v", err)
	}
	if sum.Domains != 8 {
		t.Fatalf("aggregate sees %d domains, want 8", sum.Domains)
	}
}

func TestCloseLeavesRunningJobResumable(t *testing.T) {
	s := store.NewMem()
	scan, names := worldScan()
	svc := &Service{Store: s, Scan: slowScanner{inner: scan, delay: 5 * time.Millisecond},
		Runner: RunnerSpec{Workers: 2}, ShardSize: 8}
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	j, err := svc.Submit("acme", names[:64])
	if err != nil {
		svc.Close()
		t.Fatalf("Submit: %v", err)
	}
	// Close mid-run (or even before the worker dequeues — both states
	// must resume).
	svc.Close()

	stored, ok, err := getJob(s, j.ID)
	if err != nil || !ok {
		t.Fatalf("stored job: %v", err)
	}
	if stored.State.Terminal() {
		t.Fatalf("job reached %s before Close finished, cannot exercise resume", stored.State)
	}

	svc2 := newTestService(t, s, nil)
	waitState(t, svc2, j.ID, StateDone)
}

func TestStartTwiceFails(t *testing.T) {
	svc := newTestService(t, store.NewMem(), nil)
	if err := svc.Start(); err == nil {
		t.Fatal("second Start succeeded")
	}
}
