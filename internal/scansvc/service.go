package scansvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/netsecurelab/mtasts/internal/campaign"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/store"
)

// ErrQueueFull rejects a submission when the in-memory dispatch queue
// is at capacity (HTTP 503 at the API layer).
var ErrQueueFull = errors.New("scansvc: job queue full")

// ErrRateLimited rejects a submission the tenant's token bucket cannot
// afford (HTTP 429 at the API layer).
var ErrRateLimited = errors.New("scansvc: tenant rate limit exceeded")

// Service is the durable scan-job queue: submissions persist to Store
// before they are acknowledged, at most MaxConcurrent jobs scan at
// once, and a job interrupted by a crash resumes from its campaign
// shard checkpoints on the next Start — completing with results
// byte-identical to an uninterrupted run (docs/SERVICE.md).
type Service struct {
	// Store persists jobs, domain lists, results (via the campaign
	// layout) and ingested TLSRPT reports. Required.
	Store store.Store
	// Scan executes each job's domains. Required. Must be safe for
	// concurrent use (scanner.Live and scanner.ArtifactScanner are).
	Scan scanner.Scanner
	// Runner shapes the per-job scanner.Runner (workers, staged
	// pipeline, dedup).
	Runner RunnerSpec
	// Obs, when non-nil, receives the scansvc.* and tlsrpt.ingest.*
	// metrics cataloged in docs/OBSERVABILITY.md; Events the
	// scansvc.job.* JSONL events.
	Obs    *obs.Registry
	Events *obs.EventSink
	// MaxConcurrent bounds simultaneously scanning jobs (default 2).
	MaxConcurrent int
	// MaxQueue bounds the dispatch queue (default 1024). The queue
	// holds job IDs only; the jobs themselves are already durable.
	MaxQueue int
	// ShardSize is the per-job checkpoint granularity (campaign
	// default if 0).
	ShardSize int
	// Tenants, when non-nil, applies per-tenant token-bucket admission
	// (one token per submitted domain).
	Tenants *TenantLimiter
	// StopAfterShards, when > 0, arms the crash drill: the first job
	// stops with campaign.ErrStopped after that many shards, the error
	// surfaces on Fatal(), and the job's stored state stays running so
	// a restarted service resumes it (make smoke-serve).
	StopAfterShards int

	mu      sync.Mutex
	started bool
	closed  bool
	seq     int                           // last allocated job sequence number
	cancels map[string]context.CancelFunc // in-flight jobs
	pending int                           // queued-but-not-started count

	queue  chan string
	fatal  chan error
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// Start recovers the durable queue and launches the workers: every
// stored job still pending is re-queued, every job stored as running
// (a crash mid-scan) is re-queued to resume from its checkpoints.
// Jobs are re-queued in ID (submission) order.
func (s *Service) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("scansvc: Start called twice")
	}
	if s.Store == nil || s.Scan == nil {
		s.mu.Unlock()
		return fmt.Errorf("scansvc: Service needs both Store and Scan")
	}
	s.started = true
	s.cancels = make(map[string]context.CancelFunc)
	s.queue = make(chan string, s.maxQueue())
	s.fatal = make(chan error, 1)
	//lint:ignore ctxpass the service owns its own lifetime root; Close cancels it
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.mu.Unlock()

	s.registerMetrics()

	// Recover before serving: Submit is not callable yet (the HTTP
	// layer starts after Start returns), so the scan sees a quiescent
	// store.
	var resume []string
	maxSeq := 0
	err := s.Store.Scan(jobKeyPrefix, func(k string, v []byte) error {
		var j Job
		if err := json.Unmarshal(v, &j); err != nil {
			return fmt.Errorf("scansvc: corrupt job record %s: %w", k, err)
		}
		if n := jobSeq(j.ID); n > maxSeq {
			maxSeq = n
		}
		if !j.State.Terminal() {
			resume = append(resume, j.ID)
			if j.State == StateRunning {
				s.Obs.Counter("scansvc.jobs.resumed").Inc()
				s.event("scansvc.job.resumed", &j, nil)
			}
		}
		return nil
	})
	if err != nil {
		s.cancel()
		return err
	}
	s.mu.Lock()
	s.seq = maxSeq
	s.mu.Unlock()
	sort.Strings(resume)
	for _, id := range resume {
		select {
		case s.queue <- id:
			s.addPending(1)
		default:
			s.cancel()
			return fmt.Errorf("scansvc: %d recovered jobs overflow the queue (max %d)", len(resume), s.maxQueue())
		}
	}

	for i := 0; i < s.maxConcurrent(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return nil
}

// Close stops the workers and waits for them. In-flight jobs abort at
// the next shard boundary with their stored state still running, so a
// subsequent Start resumes them — Close is the graceful form of the
// crash the queue is built to survive.
func (s *Service) Close() error {
	s.mu.Lock()
	if !s.started || s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	return nil
}

// Fatal delivers the crash-drill error (campaign.ErrStopped) when
// StopAfterShards fires. Nothing else is ever sent.
func (s *Service) Fatal() <-chan error { return s.fatal }

func (s *Service) maxConcurrent() int {
	if s.MaxConcurrent > 0 {
		return s.MaxConcurrent
	}
	return 2
}

func (s *Service) maxQueue() int {
	if s.MaxQueue > 0 {
		return s.MaxQueue
	}
	return 1024
}

// registerMetrics pre-registers the service's counters and hooks the
// queue-depth gauges, so snapshots show zeros rather than absences.
func (s *Service) registerMetrics() {
	if !s.Obs.Enabled() {
		return
	}
	for _, c := range []string{
		"scansvc.jobs.submitted", "scansvc.jobs.completed", "scansvc.jobs.failed",
		"scansvc.jobs.canceled", "scansvc.jobs.resumed", "scansvc.ratelimit.rejected",
		"tlsrpt.ingest.accepted", "tlsrpt.ingest.rejected",
	} {
		s.Obs.Counter(c)
	}
	s.Obs.Gauge("scansvc.jobs.running")
	s.Obs.Gauge("scansvc.jobs.pending")
}

func (s *Service) addPending(d int64) {
	s.mu.Lock()
	s.pending += int(d)
	s.mu.Unlock()
	s.Obs.Gauge("scansvc.jobs.pending").Add(d)
}

func (s *Service) event(name string, j *Job, extra map[string]any) {
	if s.Events == nil {
		return
	}
	fields := map[string]any{"job": j.ID, "tenant": j.Tenant, "domains": j.Domains}
	for k, v := range extra {
		fields[k] = v
	}
	s.Events.Emit(name, fields)
}

// Submit validates, persists and enqueues one job. The returned Job is
// the acknowledged stored state (pending). The domain list is stored
// and synced before the job record, so a job can never be durable
// without its domains.
func (s *Service) Submit(tenant string, domains []string) (*Job, error) {
	s.mu.Lock()
	if !s.started || s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("scansvc: service not running")
	}
	s.mu.Unlock()
	if len(domains) == 0 {
		return nil, fmt.Errorf("scansvc: job needs at least one domain")
	}
	for _, d := range domains {
		if d == "" || strings.ContainsAny(d, "/ \t\r\n") {
			return nil, fmt.Errorf("scansvc: invalid domain %q", d)
		}
	}
	if tenant == "" {
		tenant = "default"
	}
	if !s.Tenants.Admit(tenant, len(domains)) {
		s.Obs.Counter("scansvc.ratelimit.rejected").Inc()
		return nil, fmt.Errorf("%w: tenant %s over budget for %d domains", ErrRateLimited, tenant, len(domains))
	}

	// The allocator is purely in-memory (recovered from the stored jobs
	// at Start), so no store I/O happens under the mutex; the ID only
	// becomes durable with the job record below.
	s.mu.Lock()
	s.seq++
	id := jobID(s.seq)
	s.mu.Unlock()

	shardSize := s.ShardSize
	if shardSize <= 0 {
		shardSize = campaign.DefaultShardSize
	}
	j := &Job{
		ID:          id,
		Tenant:      tenant,
		State:       StatePending,
		Domains:     len(domains),
		Shards:      (len(domains) + shardSize - 1) / shardSize,
		SubmittedAt: time.Now().UTC(),
	}
	dv, err := json.Marshal(domains)
	if err != nil {
		return nil, err
	}
	if err := s.Store.Put(domKey(id), dv); err != nil {
		return nil, err
	}
	if err := putJob(s.Store, j, true); err != nil {
		return nil, err
	}

	select {
	case s.queue <- id:
	default:
		// Leave the stored job pending: a restart re-queues it, so a
		// full queue delays rather than loses work — but tell the
		// caller the service is saturated.
		return nil, fmt.Errorf("%w: job %s stored but not scheduled until restart", ErrQueueFull, id)
	}
	s.addPending(1)
	s.Obs.Counter("scansvc.jobs.submitted").Inc()
	s.event("scansvc.job.submitted", j, nil)
	return j, nil
}

// Get returns one job's stored state.
func (s *Service) Get(id string) (*Job, bool, error) {
	return getJob(s.Store, id)
}

// List returns every stored job in submission order.
func (s *Service) List() ([]Job, error) {
	var out []Job
	err := s.Store.Scan(jobKeyPrefix, func(k string, v []byte) error {
		var j Job
		if err := json.Unmarshal(v, &j); err != nil {
			return fmt.Errorf("scansvc: corrupt job record %s: %w", k, err)
		}
		out = append(out, j)
		return nil
	})
	return out, err
}

// Cancel stops a job: a running job's scan context is canceled (its
// state becomes canceled once the scan unwinds); a pending job is
// marked canceled directly and skipped when dequeued. Canceling a
// terminal job is a no-op reporting the stored state.
func (s *Service) Cancel(id string) (*Job, error) {
	j, ok, err := getJob(s.Store, id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("scansvc: no such job %s", id)
	}
	if j.State.Terminal() {
		return j, nil
	}
	s.mu.Lock()
	cancel := s.cancels[id]
	s.mu.Unlock()
	if cancel != nil {
		// Running: the worker owns the state transition.
		cancel()
		return j, nil
	}
	// Pending (or stored-running with no live worker, i.e. recovered
	// but not yet dequeued): mark terminal now.
	j.State = StateCanceled
	j.FinishedAt = time.Now().UTC()
	if err := putJob(s.Store, j, true); err != nil {
		return nil, err
	}
	s.Obs.Counter("scansvc.jobs.canceled").Inc()
	s.event("scansvc.job.canceled", j, nil)
	return j, nil
}

// worker drains the queue until the service context ends.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case id := <-s.queue:
			s.addPending(-1)
			s.runJob(id)
		}
	}
}

// runJob executes one dequeued job through the campaign engine.
func (s *Service) runJob(id string) {
	j, ok, err := getJob(s.Store, id)
	if err != nil || !ok {
		// A corrupt or vanished record cannot be run; drop it rather
		// than kill the worker.
		return
	}
	if j.State.Terminal() {
		return // canceled while queued
	}
	domains, err := getDomains(s.Store, id)
	if err != nil {
		s.finishJob(j, StateFailed, err)
		return
	}

	j.State = StateRunning
	if err := putJob(s.Store, j, true); err != nil {
		s.finishJob(j, StateFailed, err)
		return
	}

	ctx, cancel := context.WithCancel(s.ctx)
	s.mu.Lock()
	s.cancels[id] = cancel
	s.mu.Unlock()
	s.Obs.Gauge("scansvc.jobs.running").Inc()
	s.event("scansvc.job.started", j, nil)
	start := time.Now()

	runner, err := s.Runner.Build(s.Scan, s.Obs, s.Events)
	if err == nil {
		eng := &campaign.Engine{
			Store:           s.Store,
			Runner:          runner,
			ID:              id,
			ShardSize:       s.ShardSize,
			Obs:             s.Obs,
			Events:          s.Events,
			StopAfterShards: s.StopAfterShards,
		}
		err = eng.RunWeek(ctx, resultsWeek, campaign.SliceSource(domains))
	}

	s.mu.Lock()
	delete(s.cancels, id)
	s.mu.Unlock()
	cancel()
	s.Obs.Gauge("scansvc.jobs.running").Dec()
	s.Obs.Histogram("scansvc.job.seconds", nil).ObserveSince(start)

	switch {
	case err == nil:
		s.finishJob(j, StateDone, nil)
	case errors.Is(err, campaign.ErrStopped):
		// Crash drill: leave the stored state running — exactly what a
		// real crash leaves behind — and surface the drill upward.
		s.event("scansvc.job.drill_stop", j, map[string]any{"error": err.Error()})
		select {
		case s.fatal <- err:
		default:
		}
	case errors.Is(err, context.Canceled) && s.ctx.Err() != nil:
		// Service shutdown, not a job-level verdict: stored state stays
		// running so the next Start resumes from the checkpoints.
	case errors.Is(err, context.Canceled):
		s.finishJob(j, StateCanceled, nil)
	default:
		s.finishJob(j, StateFailed, err)
	}
}

// finishJob records a terminal state (best-effort durable: a failed
// Put leaves the job running, which resume treats conservatively).
func (s *Service) finishJob(j *Job, st State, cause error) {
	j.State = st
	j.FinishedAt = time.Now().UTC()
	if cause != nil {
		j.Error = cause.Error()
	}
	if err := putJob(s.Store, j, true); err != nil && j.Error == "" {
		j.Error = err.Error()
	}
	switch st {
	case StateDone:
		s.Obs.Counter("scansvc.jobs.completed").Inc()
	case StateFailed:
		s.Obs.Counter("scansvc.jobs.failed").Inc()
	case StateCanceled:
		s.Obs.Counter("scansvc.jobs.canceled").Inc()
	}
	s.event("scansvc.job."+string(st), j, nil)
}
