package scansvc

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"github.com/netsecurelab/mtasts/internal/errtax"
)

// Endpoint documents one API route. The table below is the single
// source of truth: Handler builds the mux from it, and the docscheck
// tests lock docs/SERVICE.md's endpoint list to it both ways.
type Endpoint struct {
	// Method and Pattern are the http.ServeMux registration
	// ("POST", "/api/v1/jobs/{id}/cancel").
	Method  string
	Pattern string
	// Doc is the one-line summary mirrored in docs/SERVICE.md.
	Doc string
}

// Endpoints is the service's HTTP API surface.
var Endpoints = []Endpoint{
	{"POST", "/api/v1/jobs", "submit a scan job ({tenant, domains}); 202 with the stored job"},
	{"GET", "/api/v1/jobs", "list every job in submission order"},
	{"GET", "/api/v1/jobs/{id}", "one job's stored state"},
	{"POST", "/api/v1/jobs/{id}/cancel", "cancel a pending or running job"},
	{"GET", "/api/v1/jobs/{id}/results", "stream per-domain results as JSONL (?join=tlsrpt wraps each line with the domain's TLSRPT evidence)"},
	{"POST", "/api/v1/tlsrpt", "ingest an RFC 8460 aggregate report"},
	{"GET", "/api/v1/tlsrpt/{domain}", "stored reports and the aggregated summary for one policy domain"},
}

// maxBodyBytes bounds request bodies (domain lists, TLSRPT reports).
const maxBodyBytes = 8 << 20

// Handler builds the service's API mux from the Endpoints table.
// Observability endpoints (/metrics etc.) are not mounted here — the
// command composes this mux with obs.Registry.NewServeMux.
func (s *Service) Handler() http.Handler {
	handlers := map[string]http.HandlerFunc{
		"POST /api/v1/jobs":             s.handleSubmit,
		"GET /api/v1/jobs":              s.handleList,
		"GET /api/v1/jobs/{id}":         s.handleGet,
		"POST /api/v1/jobs/{id}/cancel": s.handleCancel,
		"GET /api/v1/jobs/{id}/results": s.handleResults,
		"POST /api/v1/tlsrpt":           s.handleTLSRPTIngest,
		"GET /api/v1/tlsrpt/{domain}":   s.handleTLSRPTGet,
	}
	mux := http.NewServeMux()
	for _, e := range Endpoints {
		key := e.Method + " " + e.Pattern
		h, ok := handlers[key]
		if !ok {
			// A table row without a handler is a programming error the
			// tests catch; panic beats silently serving 404.
			panic("scansvc: endpoint without handler: " + key)
		}
		mux.HandleFunc(key, h)
	}
	return mux
}

// apiError is the JSON error envelope. Typed errtax rejections carry
// their code so clients can branch without parsing messages.
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore errdrop the status line is already on the wire; a torn client connection has no one left to tell
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	e := apiError{Error: err.Error()}
	if code, ok := errtax.CodeOf(err); ok {
		e.Code = string(code)
	}
	writeJSON(w, status, e)
}

// submitRequest is the POST /api/v1/jobs body.
type submitRequest struct {
	Tenant  string   `json:"tenant"`
	Domains []string `json:"domains"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var body submitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.Submit(body.Tenant, body.Domains)
	switch {
	case errors.Is(err, ErrRateLimited):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, j)
	}
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs, err := s.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if jobs == nil {
		jobs = []Job{}
	}
	writeJSON(w, http.StatusOK, jobs)
}

func (s *Service) handleGet(w http.ResponseWriter, req *http.Request) {
	j, ok, err := s.Get(req.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("scansvc: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Service) handleCancel(w http.ResponseWriter, req *http.Request) {
	j, err := s.Cancel(req.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Service) handleResults(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	// Partial results are legal to stream (a running job has its
	// checkpointed shards); clients gate on state via the job endpoint.
	_, ok, err := s.Get(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("scansvc: no such job"))
		return
	}
	join := req.URL.Query().Get("join") == "tlsrpt"
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	if err := s.WriteResults(w, id, join); err != nil {
		// The stream is underway; nothing to do but count.
		s.Obs.Counter("obs.export.errors").Inc()
	}
}

func (s *Service) handleTLSRPTIngest(w http.ResponseWriter, req *http.Request) {
	body, err := readAll(w, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	r, err := s.IngestTLSRPT(body)
	if err != nil {
		status := http.StatusBadRequest
		if _, typed := errtax.CodeOf(err); !typed {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"report_id": r.ReportID,
		"window":    r.DateRange.WindowKey(),
		"domains":   r.Domains(),
	})
}

func (s *Service) handleTLSRPTGet(w http.ResponseWriter, req *http.Request) {
	domain := req.PathValue("domain")
	sum, ok, err := s.TLSRPTFor(domain)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("scansvc: no reports for domain"))
		return
	}
	reports, err := s.ListTLSRPT(domain)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"domain":  domain,
		"summary": sum,
		"reports": reports,
	})
}

func readAll(w http.ResponseWriter, req *http.Request) ([]byte, error) {
	defer req.Body.Close()
	return io.ReadAll(http.MaxBytesReader(w, req.Body, maxBodyBytes))
}
