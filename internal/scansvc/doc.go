// Package scansvc turns the CLI-orchestrated scanner into a
// long-running service: a durable job queue over internal/store feeding
// the pipelined scanner.Runner through the campaign engine's sharded
// checkpoints, so a submitted job survives crashes and resumes to
// byte-identical results exactly like a campaign week (docs/SERVICE.md).
//
// The package also owns the run-setup helpers the one-shot commands
// (cmd/mtasts-scan, cmd/reproduce, cmd/mtasts-campaign) previously
// duplicated: telemetry wiring (StartTelemetry), runner construction
// (RunnerSpec), and the live scan stack (LiveSpec).
//
// Layering: Service wraps the queue and executor; Handler/Endpoints
// expose it over HTTP (submit/list/cancel jobs, stream results, ingest
// TLSRPT aggregate reports); per-tenant token buckets (TenantLimiter)
// and a bounded executor keep one tenant from starving the rest.
package scansvc
