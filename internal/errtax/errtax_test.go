package errtax

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"regexp"
	"syscall"
	"testing"
)

// snakeCase is the wire-code grammar: lowercase segments joined by
// single underscores, no digits needed so far, no leading/trailing
// underscores.
var snakeCase = regexp.MustCompile(`^[a-z]+(_[a-z]+)*$`)

func TestRegistryCodesUniqueAndSnakeCase(t *testing.T) {
	seen := make(map[Code]bool)
	for _, in := range Registry() {
		if seen[in.Code] {
			t.Errorf("code %q registered twice", in.Code)
		}
		seen[in.Code] = true
		if !snakeCase.MatchString(string(in.Code)) {
			t.Errorf("code %q is not snake_case", in.Code)
		}
	}
	if len(seen) == 0 {
		t.Fatal("empty registry")
	}
}

func TestEveryCodeHasExactlyOneCategory(t *testing.T) {
	valid := map[Category]bool{
		CategoryDNSRecord:     true,
		CategoryPolicy:        true,
		CategoryMXCert:        true,
		CategoryInconsistency: true,
		CategoryReport:        true,
	}
	for _, in := range Registry() {
		if !valid[in.Category] {
			t.Errorf("code %q has unknown category %q", in.Code, in.Category)
		}
		if got := CategoryOf(in.Code); got != in.Category {
			t.Errorf("CategoryOf(%q) = %q, registry says %q", in.Code, got, in.Category)
		}
		if in.Layer == "" {
			t.Errorf("code %q has no layer", in.Code)
		}
		if in.Doc == "" || in.Paper == "" {
			t.Errorf("code %q missing Doc or Paper provenance", in.Code)
		}
	}
	if CategoryOf("definitely_not_registered") != "" {
		t.Error("CategoryOf on an unregistered code should be empty")
	}
}

func TestCodesSortedAndMatchRegistry(t *testing.T) {
	codes := Codes()
	if len(codes) != len(Registry()) {
		t.Fatalf("Codes() has %d entries, Registry() has %d", len(codes), len(Registry()))
	}
	for i := 1; i < len(codes); i++ {
		if codes[i-1] >= codes[i] {
			t.Errorf("Codes() not strictly sorted at %d: %q >= %q", i, codes[i-1], codes[i])
		}
	}
	for _, c := range codes {
		if _, ok := Lookup(c); !ok {
			t.Errorf("Codes() returned %q but Lookup misses it", c)
		}
	}
}

func TestMessageStability(t *testing.T) {
	const msg = "resolver: lookup timed out"
	typed := New(LayerDNS, CodeTimeout, true, msg)
	if typed.Error() != msg {
		t.Fatalf("Error() = %q, want %q", typed.Error(), msg)
	}
	// Wrapping through fmt must render identically to the plain sentinel.
	plain := errors.New(msg)
	if got, want := fmt.Sprintf("query failed: %v", typed), fmt.Sprintf("query failed: %v", plain); got != want {
		t.Errorf("%%v formatting diverged: %q vs %q", got, want)
	}
	// A cause-less verdict falls back to the code string.
	bare := &Error{Layer: LayerScan, Code: CodeInconsistency}
	if bare.Error() != string(CodeInconsistency) {
		t.Errorf("nil-cause Error() = %q, want code string", bare.Error())
	}
}

func TestCodeOfHasCodeThroughWrapping(t *testing.T) {
	sentinel := New(LayerDNS, CodeServFail, true, "resolver: SERVFAIL")
	wrapped := fmt.Errorf("attempt 3: %w", fmt.Errorf("query _mta-sts.example.com: %w", sentinel))

	if c, ok := CodeOf(wrapped); !ok || c != CodeServFail {
		t.Errorf("CodeOf through two wraps = %q, %v", c, ok)
	}
	if !HasCode(wrapped, CodeServFail) {
		t.Error("HasCode should see servfail through wrapping")
	}
	if HasCode(wrapped, CodeNXDomain) {
		t.Error("HasCode matched the wrong code")
	}
	if c, ok := CodeOf(errors.New("untyped")); ok || c != "" {
		t.Errorf("CodeOf(untyped) = %q, %v; want empty, false", c, ok)
	}
	if _, ok := CodeOf(nil); ok {
		t.Error("CodeOf(nil) reported a code")
	}

	// errors.Is stays pointer-identity: two sentinels sharing a code do
	// not match each other.
	other := New(LayerDNS, CodeServFail, true, "resolver: SERVFAIL elsewhere")
	if errors.Is(wrapped, other) {
		t.Error("errors.Is matched a different sentinel with the same code")
	}
	if !errors.Is(wrapped, sentinel) {
		t.Error("errors.Is lost the original sentinel through wrapping")
	}
}

func TestOuterCodeWinsOverInner(t *testing.T) {
	inner := New(LayerDNS, CodeTimeout, true, "resolver: timeout")
	outer := Wrap(LayerFetch, CodeDNSLookup, false, fmt.Errorf("fetch policy: %w", inner))
	if c, _ := CodeOf(outer); c != CodeDNSLookup {
		t.Errorf("CodeOf = %q, want the outermost code %q", c, CodeDNSLookup)
	}
	if Transient(outer) {
		t.Error("Transient should read the outermost typed error's bit")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	cases := []*Error{
		New(LayerDNS, CodeNXDomain, false, "resolver: NXDOMAIN"),
		Wrap(LayerFetch, CodeTLSHandshake, true, fmt.Errorf("fetch: %w", io.EOF)),
		{Layer: LayerScan, Code: CodeInconsistency}, // nil cause
	}
	for _, in := range cases {
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal %#v: %v", in, err)
		}
		var out Error
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if out.Layer != in.Layer || out.Code != in.Code || out.Transient != in.Transient {
			t.Errorf("round trip changed fields: in %#v out %#v", in, &out)
		}
		if out.Error() != in.Error() {
			t.Errorf("round trip changed message: %q -> %q", in.Error(), out.Error())
		}
	}
	// The wire form omits the message when it equals the code.
	data, _ := json.Marshal(&Error{Layer: LayerScan, Code: CodeInconsistency})
	if want := `{"layer":"scan","code":"inconsistency"}`; string(data) != want {
		t.Errorf("compact wire form = %s, want %s", data, want)
	}
}

func TestTransientClassifier(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"canceled", context.Canceled, false},
		{"canceled wrapping typed transient", fmt.Errorf("%w: %w", context.Canceled, New(LayerDNS, CodeServFail, true, "x")), false},
		{"typed transient", New(LayerDNS, CodeServFail, true, "x"), true},
		{"typed persistent", New(LayerDNS, CodeNXDomain, false, "x"), false},
		{"typed persistent wrapping reset", Wrap(LayerFetch, CodeTLSHandshake, false, syscall.ECONNRESET), false},
		{"untyped reset", syscall.ECONNRESET, true},
		{"untyped deadline", context.DeadlineExceeded, true},
		{"untyped eof", io.ErrUnexpectedEOF, true},
		{"untyped protocol error", errors.New("unexpected banner"), false},
	}
	for _, tc := range cases {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("Transient(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTransientRegistryDefaultsAreConsistent(t *testing.T) {
	// New/Wrap with a registry code should agree with the registry's
	// fixed bit for non-varying codes; this catches a sentinel declared
	// with the wrong transience.
	fixedTransient := map[Code]bool{}
	for _, in := range Registry() {
		if !in.Varies {
			fixedTransient[in.Code] = in.Transient
		}
	}
	for code, want := range fixedTransient {
		in, _ := Lookup(code)
		e := New(in.Layer, code, in.Transient, "probe")
		if Transient(e) != want {
			t.Errorf("code %q: sentinel built from registry disagrees with registry bit", code)
		}
	}
}
