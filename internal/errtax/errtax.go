package errtax

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
)

// Layer names the pipeline stage that produced an error. It is
// coarser than Code (several codes per layer) and stable for use in
// JSON events.
type Layer string

// Producing layers, in pipeline order.
const (
	// LayerDNS: TXT discovery and record parsing (internal/resolver,
	// internal/mtasts record.go).
	LayerDNS Layer = "dns"
	// LayerFetch: HTTPS policy retrieval and policy parsing
	// (internal/mtasts fetch.go, policy.go).
	LayerFetch Layer = "fetch"
	// LayerProbe: SMTP STARTTLS probing and MX certificate validation
	// (internal/smtpclient, internal/pki verdicts).
	LayerProbe Layer = "probe"
	// LayerDANE: TLSA lookup and matching on the sender path
	// (internal/dane).
	LayerDANE Layer = "dane"
	// LayerScan: cross-stage verdicts only the scanner can compute
	// (policy/MX inconsistency).
	LayerScan Layer = "scan"
	// LayerReport: TLSRPT aggregate-report ingestion (internal/tlsrpt
	// validation on the service's /api/v1/tlsrpt endpoint).
	LayerReport Layer = "report"
)

// Code is a stable snake_case wire identifier for one failure mode.
// Codes appear verbatim in metric names (scan.error.<code>), JSONL scan
// events, and docs/ERRORS.md; they are never renamed, only added.
type Code string

// Error is a scan failure with a taxonomy position. It wraps (and
// formats exactly like) an underlying cause, adding the machine-readable
// layer, code, and transient-vs-persistent classification.
type Error struct {
	Layer     Layer
	Code      Code
	Transient bool
	// Cause is the underlying error; Error() delegates to it so typing
	// an error never changes its message. May be nil for pure verdicts,
	// in which case the code itself is the message.
	Cause error
}

// New returns a taxonomy error with a fixed message — the typed
// replacement for a package-level errors.New sentinel.
func New(layer Layer, code Code, transient bool, msg string) *Error {
	return &Error{Layer: layer, Code: code, Transient: transient, Cause: errors.New(msg)}
}

// Wrap attaches a taxonomy position to an existing error, preserving its
// message and chain.
func Wrap(layer Layer, code Code, transient bool, cause error) *Error {
	return &Error{Layer: layer, Code: code, Transient: transient, Cause: cause}
}

// Error formats exactly like the cause so typed sentinels render
// byte-identically to the errors.New values they replaced.
func (e *Error) Error() string {
	if e.Cause != nil {
		return e.Cause.Error()
	}
	return string(e.Code)
}

// Unwrap exposes the cause to errors.Is/As. Sentinel matching stays
// pointer-identity under errors.Is (no custom Is method): several
// sentinels may share one code (ErrMissingID and ErrBadID are both
// bad_syntax) and must remain distinguishable; code-level matching is
// what HasCode is for.
func (e *Error) Unwrap() error { return e.Cause }

// errJSON is the wire form: the cause collapses to its message.
type errJSON struct {
	Layer     Layer  `json:"layer"`
	Code      Code   `json:"code"`
	Transient bool   `json:"transient,omitempty"`
	Message   string `json:"message,omitempty"`
}

// MarshalJSON encodes {layer, code, transient, message}; the cause chain
// collapses to its rendered message.
func (e *Error) MarshalJSON() ([]byte, error) {
	j := errJSON{Layer: e.Layer, Code: e.Code, Transient: e.Transient}
	if msg := e.Error(); msg != string(e.Code) {
		j.Message = msg
	}
	return json.Marshal(j)
}

// UnmarshalJSON rebuilds an Error from its wire form. The cause becomes
// an opaque error carrying the recorded message, so layer, code,
// transience, and rendered message all round-trip.
func (e *Error) UnmarshalJSON(data []byte) error {
	var j errJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*e = Error{Layer: j.Layer, Code: j.Code, Transient: j.Transient}
	if j.Message != "" {
		e.Cause = errors.New(j.Message)
	}
	return nil
}

// CodeOf returns the taxonomy code of the first *Error in err's chain.
// ok is false for untyped errors (and nil).
func CodeOf(err error) (code Code, ok bool) {
	var e *Error
	if errors.As(err, &e) {
		return e.Code, true
	}
	return "", false
}

// HasCode reports whether err's chain carries the given code.
func HasCode(err error, code Code) bool {
	c, ok := CodeOf(err)
	return ok && c == code
}

// Transient is the pipeline-wide retry classifier: it reports whether
// err is worth retrying. Context cancellation is never transient (the
// caller is shutting down). A typed error answers with its own Transient
// bit; untyped errors fall back to the socket-level heuristic
// (TransientNet). This replaces the per-layer classifiers the resolver,
// policy fetcher, and SMTP prober used to carry.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	var e *Error
	if errors.As(err, &e) {
		return e.Transient
	}
	return TransientNet(err)
}

// TransientNet reports whether err looks like a transient socket-level
// failure: timeouts, resets, refused or dropped connections, and
// truncated streams. Context cancellation is not transient (the caller
// is shutting down); a per-attempt deadline surfacing as
// DeadlineExceeded is (the next attempt gets a fresh one — retry's
// Policy.Do separately stops when its own context is done).
func TransientNet(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.ErrClosedPipe) {
		return true
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNABORTED) || errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ETIMEDOUT) || errors.Is(err, net.ErrClosed) {
		return true
	}
	// Any remaining net.OpError is a socket-layer failure (dial, read,
	// write) rather than a protocol-level verdict.
	var oe *net.OpError
	return errors.As(err, &oe)
}

// GoString makes %#v render something readable in test failures.
func (e *Error) GoString() string {
	return fmt.Sprintf("errtax.Error{Layer:%q, Code:%q, Transient:%v, Cause:%v}",
		e.Layer, e.Code, e.Transient, e.Cause)
}
