package errtax

import "sort"

// Category is the Figure 4 grouping a code belongs to. The values match
// scanner.Category.Key() so the two layers agree on wire names without
// importing each other.
type Category string

// Figure 4 categories (§5 of the paper).
const (
	CategoryDNSRecord     Category = "dns_record"
	CategoryPolicy        Category = "policy"
	CategoryMXCert        Category = "mx_cert"
	CategoryInconsistency Category = "inconsistency"
	// CategoryReport groups the TLSRPT ingestion rejections (§6,
	// Appendix B); these never feed Figure 4 scan classifications.
	CategoryReport Category = "report"
)

// Info is one registry entry: everything the pipeline and the docs know
// about a code.
type Info struct {
	Code  Code
	Layer Layer
	// Category is the single Figure 4 category the code contributes to.
	Category Category
	// Transient is the code's typical retry classification. When Varies
	// is set the bit is computed per instance (from the underlying cause)
	// and Transient records the conservative default.
	Transient bool
	Varies    bool
	// Doc is the one-line human meaning, mirrored in docs/ERRORS.md.
	Doc string
	// Paper cites where the paper discusses this failure mode.
	Paper string
}

// DNS record codes (TXT discovery and record parsing).
const (
	CodeNXDomain        Code = "nxdomain"
	CodeNoData          Code = "nodata"
	CodeServFail        Code = "servfail"
	CodeRefused         Code = "refused"
	CodeTimeout         Code = "timeout"
	CodeBadDNSMessage   Code = "bad_dns_message"
	CodeCNAMELoop       Code = "cname_loop"
	CodeMultipleRecords Code = "multiple_records"
	CodeBadSyntax       Code = "bad_syntax"
	CodeBadVersion      Code = "bad_version"
)

// Policy retrieval codes (HTTPS fetch stages and policy parsing).
const (
	CodeDNSLookup        Code = "dns_lookup"
	CodeTCPConnect       Code = "tcp_connect"
	CodeTLSHandshake     Code = "tls_handshake"
	CodeHTTPStatus       Code = "http_status"
	CodeWrongContentType Code = "wrong_content_type"
	CodeParse            Code = "parse"
	CodeVersionMismatch  Code = "version_mismatch"
	CodeBadMXPattern     Code = "bad_mx_pattern"
)

// MX certificate codes (SMTP STARTTLS probing and PKIX validation).
const (
	CodeExpired        Code = "expired"
	CodeSelfSigned     Code = "self_signed"
	CodeUntrustedChain Code = "untrusted_chain"
	CodeNameMismatch   Code = "name_mismatch"
	CodeNoCertificate  Code = "no_certificate"
	CodeNoSTARTTLS     Code = "no_starttls"
	CodeGreylisted     Code = "greylisted"
)

// DANE codes (sender-path TLSA lookup and matching).
const (
	CodeNoTLSARecords Code = "no_tlsa_records"
	CodeInsecureTLSA  Code = "insecure_tlsa"
	CodeTLSANoMatch   Code = "tlsa_no_match"
	CodeTLSABadParams Code = "tlsa_bad_params"
)

// Cross-stage codes.
const (
	CodeInconsistency Code = "inconsistency"
)

// TLSRPT report-ingestion codes (RFC 8460 aggregate reports POSTed to
// the service, §6 / Appendix B).
const (
	CodeReportParse             Code = "report_parse"
	CodeReportMissingID         Code = "report_missing_id"
	CodeReportBadWindow         Code = "report_bad_window"
	CodeReportEmptyPolicyDomain Code = "report_empty_policy_domain"
	CodeReportDuplicatePolicy   Code = "report_duplicate_policy"
	CodeReportCountMismatch     Code = "report_count_mismatch"
)

// registry is the single source of truth for the taxonomy. docs/ERRORS.md
// is kept in lockstep by TestErrorDocsConsistency; scan.error.<code>
// counters are pre-registered from it by the scanner.
var registry = []Info{
	// DNS record errors (Figure 4 "DNS Records", §5.1). The resolver
	// codes appear here because a failing TXT lookup for
	// _mta-sts.<domain> is attributed to the DNS record category.
	{CodeNXDomain, LayerDNS, CategoryDNSRecord, false, false,
		"the queried name does not exist (DNS NXDOMAIN)", "§4.3.2"},
	{CodeNoData, LayerDNS, CategoryDNSRecord, false, false,
		"the name exists but has no records of the queried type", "§4.3.2"},
	{CodeServFail, LayerDNS, CategoryDNSRecord, true, false,
		"the authoritative or recursive server answered SERVFAIL", "§4.3.2"},
	{CodeRefused, LayerDNS, CategoryDNSRecord, true, false,
		"the server refused the query (DNS REFUSED)", "§4.3.2"},
	{CodeTimeout, LayerDNS, CategoryDNSRecord, true, false,
		"the DNS exchange timed out", "§4.3.2"},
	{CodeBadDNSMessage, LayerDNS, CategoryDNSRecord, true, false,
		"the DNS response was malformed or had an unexpected rcode", "§4.3.2"},
	{CodeCNAMELoop, LayerDNS, CategoryDNSRecord, false, false,
		"CNAME chase exceeded the loop limit", "§4.3.2"},
	{CodeMultipleRecords, LayerDNS, CategoryDNSRecord, false, false,
		"more than one MTA-STS TXT record at _mta-sts.<domain> (RFC 8461 requires exactly one)", "§5.1"},
	{CodeBadSyntax, LayerDNS, CategoryDNSRecord, false, false,
		"the MTA-STS TXT record is syntactically invalid (missing/bad id, bad field syntax, duplicate fields)", "§5.1"},
	{CodeBadVersion, LayerDNS, CategoryDNSRecord, false, false,
		"the record's v= field is not STSv1", "§5.1"},

	// Policy retrieval errors (Figure 4 "Policy Retrieval", §5.2).
	{CodeDNSLookup, LayerFetch, CategoryPolicy, false, true,
		"the policy host mta-sts.<domain> did not resolve", "§5.2"},
	{CodeTCPConnect, LayerFetch, CategoryPolicy, true, true,
		"TCP connection to the policy host failed", "§5.2"},
	{CodeTLSHandshake, LayerFetch, CategoryPolicy, false, true,
		"the HTTPS handshake with the policy host failed (certificate or protocol)", "§5.2"},
	{CodeHTTPStatus, LayerFetch, CategoryPolicy, false, true,
		"the policy endpoint answered a non-200 HTTP status", "§5.2"},
	{CodeWrongContentType, LayerFetch, CategoryPolicy, false, false,
		"the policy was served with a Content-Type other than text/plain (RFC 8461 §3.3)", "§5.2"},
	{CodeParse, LayerFetch, CategoryPolicy, false, false,
		"the policy body does not parse (bad fields, line endings, size, charset)", "§5.2"},
	{CodeVersionMismatch, LayerFetch, CategoryPolicy, false, false,
		"the policy's version field is not STSv1", "§5.2"},
	{CodeBadMXPattern, LayerFetch, CategoryPolicy, false, false,
		"the policy's mx patterns are missing or syntactically invalid", "§5.2"},

	// MX certificate errors (Figure 4 "MX Hosts Cert.", §5.3).
	{CodeExpired, LayerProbe, CategoryMXCert, false, false,
		"an MX host's certificate is expired (or not yet valid)", "§5.3"},
	{CodeSelfSigned, LayerProbe, CategoryMXCert, false, false,
		"an MX host presents a self-signed certificate", "§5.3"},
	{CodeUntrustedChain, LayerProbe, CategoryMXCert, false, false,
		"an MX host's certificate chain does not anchor in a trusted root", "§5.3"},
	{CodeNameMismatch, LayerProbe, CategoryMXCert, false, false,
		"an MX host's certificate does not cover the MX name", "§5.3"},
	{CodeNoCertificate, LayerProbe, CategoryMXCert, false, false,
		"the TLS handshake with an MX host failed before a certificate could be evaluated", "§5.3"},
	{CodeNoSTARTTLS, LayerProbe, CategoryMXCert, false, false,
		"an MX host does not advertise STARTTLS (excluded from certificate analysis, footnote 4)", "§5.3"},
	{CodeGreylisted, LayerProbe, CategoryMXCert, true, false,
		"an MX host temporarily rejected the probe (greylisting); retried, never a verdict", "§4.3.3"},

	// DANE/TLSA errors on the sender path (§6).
	{CodeNoTLSARecords, LayerDANE, CategoryMXCert, false, false,
		"no TLSA records exist for the MX host", "§6"},
	{CodeInsecureTLSA, LayerDANE, CategoryMXCert, false, false,
		"TLSA records exist but are not DNSSEC-authenticated", "§6"},
	{CodeTLSANoMatch, LayerDANE, CategoryMXCert, false, false,
		"no TLSA record matches the certificate the MX presented", "§6"},
	{CodeTLSABadParams, LayerDANE, CategoryMXCert, false, false,
		"a TLSA record carries an unsupported usage/selector/matching combination", "§6"},

	// Inconsistency (Figure 4 "Inconsistency", §5.4).
	{CodeInconsistency, LayerScan, CategoryInconsistency, false, false,
		"record, policy, and MX hosts are individually valid but the policy's mx patterns do not cover the MX records", "§5.4"},

	// TLSRPT aggregate-report ingestion rejections (§6, Appendix B).
	// All persistent: a malformed report stays malformed on retry.
	{CodeReportParse, LayerReport, CategoryReport, false, false,
		"the report body is not a valid RFC 8460 JSON document", "Appendix B"},
	{CodeReportMissingID, LayerReport, CategoryReport, false, false,
		"the report carries no report-id (required by RFC 8460 §4.1)", "Appendix B"},
	{CodeReportBadWindow, LayerReport, CategoryReport, false, false,
		"the report's date-range is missing or ends before it starts", "Appendix B"},
	{CodeReportEmptyPolicyDomain, LayerReport, CategoryReport, false, false,
		"a policy section has an empty policy-domain, so its counts cannot be attributed", "Appendix B"},
	{CodeReportDuplicatePolicy, LayerReport, CategoryReport, false, false,
		"two policy sections share one (policy-type, policy-domain) pair, double-counting sessions", "Appendix B"},
	{CodeReportCountMismatch, LayerReport, CategoryReport, false, false,
		"a policy section's failure-details counts do not sum to its summary total (or are negative)", "Appendix B"},
}

// index is built once from the registry slice.
var index = func() map[Code]Info {
	m := make(map[Code]Info, len(registry))
	for _, in := range registry {
		m[in.Code] = in
	}
	return m
}()

// Codes returns every registered code, sorted, for deterministic
// iteration (counter pre-registration, docs checks).
func Codes() []Code {
	out := make([]Code, 0, len(index))
	for c := range index {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Registry returns a copy of every registry entry, sorted by code.
func Registry() []Info {
	out := make([]Info, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// Lookup returns the registry entry for a code.
func Lookup(c Code) (Info, bool) {
	in, ok := index[c]
	return in, ok
}

// CategoryOf returns the Figure 4 category a code contributes to
// (empty for unregistered codes).
func CategoryOf(c Code) Category {
	return index[c].Category
}
