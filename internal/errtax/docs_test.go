package errtax

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// docEntry is one parsed docs/ERRORS.md catalog row.
type docEntry struct {
	category  Category
	layer     Layer
	transient string // "yes", "no", or "varies"
	paper     string
}

var (
	categoryHeading = regexp.MustCompile("^### .*\\(`([a-z_]+)`\\)")
	codeCell        = regexp.MustCompile("^`([a-z_]+)`$")
)

// parseErrorDocs extracts the code catalog from docs/ERRORS.md: section
// headings name the category, table rows carry code, layer, transient
// verdict, and paper reference.
func parseErrorDocs(t *testing.T, path string) map[Code]docEntry {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	out := make(map[Code]docEntry)
	var current Category
	for ln, line := range strings.Split(string(data), "\n") {
		if m := categoryHeading.FindStringSubmatch(line); m != nil {
			current = Category(m[1])
			continue
		}
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cells := strings.Split(line, "|")
		// "| `code` | layer | transient | meaning | paper |" splits into
		// 7 cells with empty first and last.
		if len(cells) != 7 {
			t.Errorf("%s:%d: catalog row has %d cells, want 5 columns", path, ln+1, len(cells)-2)
			continue
		}
		m := codeCell.FindStringSubmatch(strings.TrimSpace(cells[1]))
		if m == nil {
			t.Errorf("%s:%d: first column %q is not a backticked code", path, ln+1, cells[1])
			continue
		}
		code := Code(m[1])
		if current == "" {
			t.Errorf("%s:%d: code %q documented before any category heading", path, ln+1, code)
		}
		if _, dup := out[code]; dup {
			t.Errorf("%s:%d: code %q documented twice", path, ln+1, code)
		}
		out[code] = docEntry{
			category:  current,
			layer:     Layer(strings.TrimSpace(cells[2])),
			transient: strings.TrimSpace(cells[3]),
			paper:     strings.TrimSpace(cells[5]),
		}
	}
	return out
}

// TestErrorDocsConsistency keeps docs/ERRORS.md and the code registry
// in lockstep, both directions — the same contract obsdocs enforces
// between metric call sites and docs/OBSERVABILITY.md.
func TestErrorDocsConsistency(t *testing.T) {
	docs := parseErrorDocs(t, "../../docs/ERRORS.md")
	if len(docs) == 0 {
		t.Fatal("no catalog rows parsed from docs/ERRORS.md")
	}

	for _, in := range Registry() {
		d, ok := docs[in.Code]
		if !ok {
			t.Errorf("code %q registered but missing from docs/ERRORS.md", in.Code)
			continue
		}
		if d.category != in.Category {
			t.Errorf("code %q documented under %q, registry says %q", in.Code, d.category, in.Category)
		}
		if d.layer != in.Layer {
			t.Errorf("code %q documented with layer %q, registry says %q", in.Code, d.layer, in.Layer)
		}
		want := "no"
		switch {
		case in.Varies:
			want = "varies"
		case in.Transient:
			want = "yes"
		}
		if d.transient != want {
			t.Errorf("code %q documented transient=%q, registry says %q", in.Code, d.transient, want)
		}
		if d.paper != in.Paper {
			t.Errorf("code %q documented with paper ref %q, registry says %q", in.Code, d.paper, in.Paper)
		}
	}

	for code := range docs {
		if _, ok := Lookup(code); !ok {
			t.Errorf("code %q documented in docs/ERRORS.md but not registered", code)
		}
	}
}
