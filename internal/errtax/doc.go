// Package errtax is the scan pipeline's typed error taxonomy. Every
// failure mode the paper's measurement methodology distinguishes —
// invalid MTA-STS TXT records, failed policy retrievals, PKIX-invalid MX
// certificates, policy/MX inconsistencies (§5, Figure 4) — is a stable
// snake_case Code registered in a central registry (registry.go,
// cataloged for humans in docs/ERRORS.md). Producing layers (resolver,
// mtasts record/policy/fetch, smtpclient, dane) attach codes by
// returning *Error values; consuming layers (retry, scanner, report,
// obs) key off the code instead of matching error strings or booleans.
//
// Two invariants matter to the rest of the module:
//
//   - Message stability. An *Error formats exactly like its Cause, so
//     converting a sentinel from errors.New to errtax carries zero
//     observable change through %v/%s/%w formatting — the scanner's
//     ClassificationKey, pinned byte-identical by the equivalence tests,
//     does not move.
//
//   - Transience. Each Error carries the transient-vs-persistent verdict
//     that the retry layer previously recomputed with per-package
//     classifier funcs. Transient is the single classifier now: it reads
//     the bit from the first *Error in the chain and falls back to the
//     shared socket-level heuristic (TransientNet) for untyped errors.
package errtax
