package notify

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/smtpd"
)

var testNow = time.Date(2024, 10, 22, 0, 0, 0, 0, time.UTC)

// brokenResult fabricates a misconfigured scan result for domain with the
// given MX hosts.
func brokenResult(domain string, mxs ...string) scanner.DomainResult {
	a := scanner.Artifacts{
		Domain:             domain,
		TXT:                []string{"v=STSv1; id=1;"},
		MXHosts:            mxs,
		PolicyHostResolves: true,
		TCPOpen:            true,
		PolicyCert:         pki.ExpiredProfile(testNow, mtasts.PolicyHost(domain)),
		HTTPStatus:         200,
		MXSTARTTLS:         map[string]bool{},
		MXCerts:            map[string]pki.CertProfile{},
	}
	for _, mx := range mxs {
		a.MXSTARTTLS[mx] = true
		a.MXCerts[mx] = pki.GoodProfile(testNow, mx)
	}
	return scanner.ScanArtifacts(a, testNow)
}

func cleanResult(domain, mx string) scanner.DomainResult {
	a := scanner.Artifacts{
		Domain:             domain,
		TXT:                []string{"v=STSv1; id=1;"},
		MXHosts:            []string{mx},
		PolicyHostResolves: true,
		TCPOpen:            true,
		PolicyCert:         pki.GoodProfile(testNow, mtasts.PolicyHost(domain)),
		HTTPStatus:         200,
		PolicyBody:         []byte("version: STSv1\nmode: enforce\nmx: " + mx + "\nmax_age: 86400\n"),
		MXSTARTTLS:         map[string]bool{mx: true},
		MXCerts:            map[string]pki.CertProfile{mx: pki.GoodProfile(testNow, mx)},
	}
	return scanner.ScanArtifacts(a, testNow)
}

// startInbox boots a postmaster MX.
func startInbox(t *testing.T, b smtpd.Behavior) (*smtpd.Server, string) {
	t.Helper()
	srv := smtpd.New(b)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func TestCampaignDeliversNotifications(t *testing.T) {
	inbox, addr := startInbox(t, smtpd.Behavior{Hostname: "mx.broken.example", AcceptMail: true})
	c := &Campaign{
		From:     "research@netsecurelab.example",
		HeloName: "notify.lab",
		DialAddr: func(mx string) string { return addr },
		Timeout:  3 * time.Second,
	}
	results := []scanner.DomainResult{
		brokenResult("broken.example", "mx.broken.example"),
		cleanResult("fine.example", "mx.fine.example"),
	}
	res, sum := c.Run(context.Background(), results)
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	if sum.Notified != 1 || sum.Delivered != 1 || sum.Skipped != 1 {
		t.Errorf("summary = %+v", sum)
	}
	msgs := inbox.Messages()
	if len(msgs) != 1 {
		t.Fatalf("inbox = %d messages", len(msgs))
	}
	if !strings.Contains(msgs[0].To[0], "postmaster@broken.example") {
		t.Errorf("rcpt = %v", msgs[0].To)
	}
	body := string(msgs[0].Data)
	if !strings.Contains(body, "TLS stage") || !strings.Contains(body, "expired certificate") {
		t.Errorf("body missing diagnosis:\n%s", body)
	}
	if !strings.Contains(body, "_smtp._tls") {
		t.Error("body missing the TLSRPT recommendation")
	}
}

func TestCampaignBounce(t *testing.T) {
	_, addr := startInbox(t, smtpd.Behavior{Hostname: "mx.gone.example", RejectAll: true})
	c := &Campaign{
		From: "research@netsecurelab.example", HeloName: "notify.lab",
		DialAddr: func(mx string) string { return addr }, Timeout: 3 * time.Second,
	}
	_, sum := c.Run(context.Background(), []scanner.DomainResult{
		brokenResult("gone.example", "mx.gone.example"),
	})
	if sum.Bounced != 1 || sum.Delivered != 0 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestCampaignUnreachable(t *testing.T) {
	c := &Campaign{
		From: "research@netsecurelab.example", HeloName: "notify.lab",
		DialAddr: func(mx string) string { return "127.0.0.1:1" }, // closed port
		Timeout:  time.Second,
	}
	_, sum := c.Run(context.Background(), []scanner.DomainResult{
		brokenResult("dark.example", "mx.dark.example"),
	})
	if sum.Unreachable != 1 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestCampaignFailover(t *testing.T) {
	// First MX unreachable, second accepts: the notification arrives.
	inbox, addr := startInbox(t, smtpd.Behavior{Hostname: "mx2.multi.example", AcceptMail: true})
	c := &Campaign{
		From: "research@netsecurelab.example", HeloName: "notify.lab",
		DialAddr: func(mx string) string {
			if mx == "mx1.multi.example" {
				return "127.0.0.1:1"
			}
			return addr
		},
		Timeout: time.Second,
	}
	res, sum := c.Run(context.Background(), []scanner.DomainResult{
		brokenResult("multi.example", "mx1.multi.example", "mx2.multi.example"),
	})
	if sum.Delivered != 1 {
		t.Fatalf("summary = %+v (res %+v)", sum, res)
	}
	if res[0].MXHost != "mx2.multi.example" {
		t.Errorf("delivered via %s", res[0].MXHost)
	}
	if len(inbox.Messages()) != 1 {
		t.Error("no message in failover inbox")
	}
}

func TestComposeCoversAllCategories(t *testing.T) {
	// A result with every error category produces guidance for each.
	a := scanner.Artifacts{
		Domain:             "всё.example", // non-ASCII domain in the label is fine for compose
		TXT:                []string{"v=STSv1;"},
		MXHosts:            []string{"mx.bad.example"},
		PolicyHostResolves: true,
		TCPOpen:            true,
		PolicyCert:         pki.GoodProfile(testNow, "mta-sts.всё.example"),
		HTTPStatus:         200,
		PolicyBody:         []byte("version: STSv1\nmode: enforce\nmx: mta-sts.other.example\nmax_age: 1\n"),
		MXSTARTTLS:         map[string]bool{"mx.bad.example": true},
		MXCerts:            map[string]pki.CertProfile{"mx.bad.example": pki.SelfSignedProfile(testNow, "mx.bad.example")},
	}
	r := scanner.ScanArtifacts(a, testNow)
	body := string(Compose(&r))
	for _, want := range []string{
		"TXT record is invalid",
		"PKIX-invalid certificate (self-signed)",
		"do not match your MX records",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("compose missing %q in:\n%s", want, body)
		}
	}
	if r.DeliveryFailure() && !strings.Contains(body, "REFUSE") {
		t.Error("delivery-failure warning missing")
	}
}

func TestComposeMTASTSLabelHint(t *testing.T) {
	a := scanner.Artifacts{
		Domain:             "hint.example",
		TXT:                []string{"v=STSv1; id=1;"},
		MXHosts:            []string{"mail.provider7.example"},
		PolicyHostResolves: true,
		TCPOpen:            true,
		PolicyCert:         pki.GoodProfile(testNow, "mta-sts.hint.example"),
		HTTPStatus:         200,
		PolicyBody:         []byte("version: STSv1\nmode: testing\nmx: mta-sts.provider7.example\nmax_age: 1\n"),
		MXSTARTTLS:         map[string]bool{"mail.provider7.example": true},
		MXCerts:            map[string]pki.CertProfile{"mail.provider7.example": pki.GoodProfile(testNow, "mail.provider7.example")},
	}
	r := scanner.ScanArtifacts(a, testNow)
	if r.Mismatch.Kind != inconsistency.Kind3LDPlus || !r.Mismatch.MTASTSLabelInPattern {
		t.Fatalf("fixture mismatch = %+v", r.Mismatch)
	}
	body := string(Compose(&r))
	if !strings.Contains(body, "not the mta-sts policy host") {
		t.Error("3LD+ hint missing")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeDelivered: "delivered", OutcomeBounced: "bounced",
		OutcomeUnreachable: "unreachable", OutcomeSkipped: "skipped",
	} {
		if o.String() != want {
			t.Errorf("Outcome(%d) = %q", int(o), o.String())
		}
	}
}
