// Package notify implements the responsible-disclosure campaign of §4.7
// of the paper as executable behavior: it composes a misconfiguration
// notification for each affected domain (describing the exact errors the
// scan found, with remediation guidance, and recommending TLSRPT per the
// paper's disclosure emails) and delivers it to the postmaster address
// over SMTP, recording deliveries and bounces.
package notify

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/smtpclient"
)

// Outcome classifies one notification attempt.
type Outcome int

// Notification outcomes.
const (
	// OutcomeDelivered: the postmaster MX accepted the message.
	OutcomeDelivered Outcome = iota
	// OutcomeBounced: the transaction was rejected (the >5,000-bounce
	// population of §4.7).
	OutcomeBounced
	// OutcomeUnreachable: no MX could be contacted at all.
	OutcomeUnreachable
	// OutcomeSkipped: the domain was not misconfigured; nothing sent.
	OutcomeSkipped
)

// String returns a short label.
func (o Outcome) String() string {
	switch o {
	case OutcomeDelivered:
		return "delivered"
	case OutcomeBounced:
		return "bounced"
	case OutcomeUnreachable:
		return "unreachable"
	}
	return "skipped"
}

// Result records one domain's notification attempt.
type Result struct {
	Domain  string
	Outcome Outcome
	MXHost  string
	Err     error
}

// Summary aggregates a campaign.
type Summary struct {
	Notified    int
	Delivered   int
	Bounced     int
	Unreachable int
	Skipped     int
}

// Campaign delivers notifications. DialAddr maps an MX host to a dial
// address (loopback labs); nil dials host:Port directly.
type Campaign struct {
	// From is the envelope sender of the notifications.
	From string
	// HeloName is announced in EHLO.
	HeloName string
	// DialAddr maps MX hosts to dial addresses (tests); nil uses
	// host:SMTPPort.
	DialAddr func(mxHost string) string
	// SMTPPort overrides port 25 when DialAddr is nil.
	SMTPPort int
	// Timeout bounds each delivery. Zero means 10s.
	Timeout time.Duration
}

// Run notifies the postmaster of every misconfigured domain in results.
// Delivery is opportunistic (the paper notified over plain SMTP): a
// notification about broken TLS must not itself require working TLS.
func (c *Campaign) Run(ctx context.Context, results []scanner.DomainResult) ([]Result, Summary) {
	var out []Result
	var sum Summary
	for i := range results {
		r := &results[i]
		res := c.notifyOne(ctx, r)
		out = append(out, res)
		switch res.Outcome {
		case OutcomeDelivered:
			sum.Notified++
			sum.Delivered++
		case OutcomeBounced:
			sum.Notified++
			sum.Bounced++
		case OutcomeUnreachable:
			sum.Notified++
			sum.Unreachable++
		case OutcomeSkipped:
			sum.Skipped++
		}
	}
	return out, sum
}

func (c *Campaign) notifyOne(ctx context.Context, r *scanner.DomainResult) Result {
	if !r.RecordPresent || !r.Misconfigured() {
		return Result{Domain: r.Domain, Outcome: OutcomeSkipped}
	}
	body := Compose(r)
	rcpt := "postmaster@" + r.Domain

	var lastErr error
	for _, mx := range r.MXHosts {
		sender := &smtpclient.Sender{
			HeloName: c.HeloName,
			Timeout:  c.timeout(),
			Port:     c.SMTPPort,
		}
		if c.DialAddr != nil {
			sender.AddrOverride = c.DialAddr(mx)
		}
		_, err := sender.Deliver(ctx, mx, c.From, []string{rcpt}, body)
		if err == nil {
			return Result{Domain: r.Domain, Outcome: OutcomeDelivered, MXHost: mx}
		}
		lastErr = err
		if isRejection(err) {
			return Result{Domain: r.Domain, Outcome: OutcomeBounced, MXHost: mx, Err: err}
		}
	}
	return Result{Domain: r.Domain, Outcome: OutcomeUnreachable, Err: lastErr}
}

func (c *Campaign) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 10 * time.Second
	}
	return c.Timeout
}

// isRejection distinguishes an SMTP-level refusal (bounce) from a
// connection-level failure (unreachable).
func isRejection(err error) bool {
	return err != nil && (strings.Contains(err.Error(), "rejected") ||
		strings.Contains(err.Error(), "answered 5"))
}

// Compose renders the notification email for one scan result: subject,
// headers, the per-category findings, remediation guidance, and the
// TLSRPT recommendation the paper's campaign included.
func Compose(r *scanner.DomainResult) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "Subject: MTA-STS misconfiguration detected for %s\n", r.Domain)
	fmt.Fprintf(&b, "Auto-Submitted: auto-generated\n\n")
	fmt.Fprintf(&b, "Dear postmaster of %s,\n\n", r.Domain)
	fmt.Fprintf(&b, "a routine scan of MTA-STS deployments found the following issue(s):\n\n")

	for _, cat := range r.Categories() {
		switch cat {
		case scanner.CategoryDNSRecord:
			fmt.Fprintf(&b, "* Your _mta-sts TXT record is invalid: %v.\n", r.RecordErr)
			fmt.Fprintf(&b, "  Compliant senders treat MTA-STS as not deployed.\n")
		case scanner.CategoryPolicy:
			fmt.Fprintf(&b, "* Your policy could not be retrieved from %s\n", mtasts.PolicyURL(r.Domain))
			fmt.Fprintf(&b, "  (failure at the %s stage", r.PolicyStage)
			if r.PolicyStage == mtasts.StageTLS {
				fmt.Fprintf(&b, ": %s certificate", r.PolicyCertProblem)
			}
			if r.PolicyHTTPStatus != 0 && r.PolicyStage == mtasts.StageHTTP {
				fmt.Fprintf(&b, ": HTTP %d", r.PolicyHTTPStatus)
			}
			fmt.Fprintf(&b, ").\n  Senders fall back to opportunistic TLS — the downgrade MTA-STS should prevent.\n")
		case scanner.CategoryMXCert:
			for mx, p := range r.MXProblems {
				if !p.Valid() {
					fmt.Fprintf(&b, "* MX host %s presents a PKIX-invalid certificate (%s).\n", mx, p)
				}
			}
		case scanner.CategoryInconsistency:
			fmt.Fprintf(&b, "* Your policy's mx patterns %v do not match your MX records %v (%s mismatch).\n",
				r.Mismatch.Patterns, r.Mismatch.MXHosts, r.Mismatch.Kind)
			if r.Mismatch.Kind == inconsistency.Kind3LDPlus && r.Mismatch.MTASTSLabelInPattern {
				fmt.Fprintf(&b, "  Note: mx patterns must name your mail hosts, not the mta-sts policy host.\n")
			}
		}
	}

	if r.DeliveryFailure() {
		fmt.Fprintf(&b, "\nIMPORTANT: your policy is in \"enforce\" mode and no usable MX passes validation;\n")
		fmt.Fprintf(&b, "MTA-STS-compliant senders currently REFUSE to deliver mail to %s.\n", r.Domain)
	}

	fmt.Fprintf(&b, "\nWe also recommend enabling SMTP TLS Reporting (RFC 8460) by publishing a\n")
	fmt.Fprintf(&b, "_smtp._tls TXT record, so sending providers report TLS failures to you directly.\n")
	fmt.Fprintf(&b, "\nThis notification is part of a research reproduction; no reply is needed.\n")
	return []byte(b.String())
}
