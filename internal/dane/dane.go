// Package dane implements the TLSA-record semantics of DANE for SMTP
// (RFC 6698, RFC 7672) needed by the sender-side analysis in §6 of the
// paper: TLSA record construction and matching against presented
// certificates, and the sender decision of whether DANE applies.
//
// Substitution note (see DESIGN.md): real DANE requires DNSSEC-signed
// responses. DNSSEC cryptography is out of scope for what the paper
// measures — whether senders *validate* DANE and how they rank it against
// MTA-STS — so TLSA records carry an explicit Secure bit standing in for
// "obtained via a validated DNSSEC chain".
package dane

import (
	"bytes"
	"crypto/sha256"
	"crypto/sha512"
	"crypto/x509"
	"fmt"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/errtax"
)

// Certificate usages (RFC 6698 §2.1.1). SMTP (RFC 7672) only uses DANE-TA
// and DANE-EE.
const (
	UsagePKIXTA uint8 = 0 // CA constraint
	UsagePKIXEE uint8 = 1 // service certificate constraint
	UsageDANETA uint8 = 2 // trust anchor assertion
	UsageDANEEE uint8 = 3 // domain-issued certificate
)

// Selectors (RFC 6698 §2.1.2).
const (
	SelectorCert uint8 = 0 // full certificate
	SelectorSPKI uint8 = 1 // SubjectPublicKeyInfo
)

// Matching types (RFC 6698 §2.1.3).
const (
	MatchingFull   uint8 = 0
	MatchingSHA256 uint8 = 1
	MatchingSHA512 uint8 = 2
)

// Errors returned by verification, typed into the scan error taxonomy
// (docs/ERRORS.md). All are persistent verdicts about the deployment's
// TLSA records, never retried.
var (
	ErrNoTLSARecords = errtax.New(errtax.LayerDANE, errtax.CodeNoTLSARecords, false, "dane: no TLSA records")
	ErrInsecureTLSA  = errtax.New(errtax.LayerDANE, errtax.CodeInsecureTLSA, false, "dane: TLSA records not DNSSEC-validated")
	ErrNoMatch       = errtax.New(errtax.LayerDANE, errtax.CodeTLSANoMatch, false, "dane: no TLSA record matches the presented certificate")
	ErrBadParams     = errtax.New(errtax.LayerDANE, errtax.CodeTLSABadParams, false, "dane: unsupported TLSA parameter combination")
)

// Record is a TLSA record together with its DNSSEC security status.
type Record struct {
	Usage        uint8
	Selector     uint8
	MatchingType uint8
	CertData     []byte
	// Secure stands in for "the RRset was obtained via a validated DNSSEC
	// chain"; insecure TLSA records MUST be ignored (RFC 7672 §2.2).
	Secure bool
}

// TLSAName returns the owner name for the TLSA record of an SMTP host:
// "_25._tcp." + mxHost (RFC 7672 §2.2.3).
func TLSAName(mxHost string) string { return "_25._tcp." + mxHost }

// FromRR converts a dnsmsg TLSA record; secure conveys the DNSSEC status
// of the response it came from.
func FromRR(rr dnsmsg.RR, secure bool) (Record, error) {
	td, ok := rr.Data.(dnsmsg.TLSAData)
	if !ok {
		//lint:ignore codes a non-TLSA RR here is a caller bug, not a scan verdict to classify
		return Record{}, fmt.Errorf("dane: record %s is %s, not TLSA", rr.Name, rr.Type)
	}
	return Record{
		Usage: td.Usage, Selector: td.Selector, MatchingType: td.MatchingType,
		CertData: td.CertData, Secure: secure,
	}, nil
}

// NewEE3 builds the RFC 7672-recommended "3 1 1" record (DANE-EE, SPKI,
// SHA-256) for a certificate.
func NewEE3(cert *x509.Certificate) Record {
	sum := sha256.Sum256(cert.RawSubjectPublicKeyInfo)
	return Record{
		Usage: UsageDANEEE, Selector: SelectorSPKI, MatchingType: MatchingSHA256,
		CertData: sum[:], Secure: true,
	}
}

// RR converts the record into a dnsmsg.RR at the conventional owner name.
func (r Record) RR(mxHost string, ttl uint32) dnsmsg.RR {
	return dnsmsg.RR{
		Name: TLSAName(mxHost), Type: dnsmsg.TypeTLSA, Class: dnsmsg.ClassIN, TTL: ttl,
		Data: dnsmsg.TLSAData{
			Usage: r.Usage, Selector: r.Selector, MatchingType: r.MatchingType,
			CertData: r.CertData,
		},
	}
}

// MatchesCertificate reports whether the record's association data matches
// cert under the record's selector and matching type.
func (r Record) MatchesCertificate(cert *x509.Certificate) (bool, error) {
	var input []byte
	switch r.Selector {
	case SelectorCert:
		input = cert.Raw
	case SelectorSPKI:
		input = cert.RawSubjectPublicKeyInfo
	default:
		return false, fmt.Errorf("%w: selector %d", ErrBadParams, r.Selector)
	}
	switch r.MatchingType {
	case MatchingFull:
		return bytes.Equal(r.CertData, input), nil
	case MatchingSHA256:
		sum := sha256.Sum256(input)
		return bytes.Equal(r.CertData, sum[:]), nil
	case MatchingSHA512:
		sum := sha512.Sum512(input)
		return bytes.Equal(r.CertData, sum[:]), nil
	default:
		return false, fmt.Errorf("%w: matching type %d", ErrBadParams, r.MatchingType)
	}
}

// Verify checks a presented chain against a TLSA RRset per RFC 7672:
// insecure records are ignored; DANE-EE matches the leaf; DANE-TA matches
// any issuer certificate in the chain. PKIX-* usages are not used with
// SMTP and are skipped.
func Verify(records []Record, chain []*x509.Certificate) error {
	if len(records) == 0 {
		return ErrNoTLSARecords
	}
	secure := records[:0:0]
	for _, r := range records {
		if r.Secure {
			secure = append(secure, r)
		}
	}
	if len(secure) == 0 {
		return ErrInsecureTLSA
	}
	if len(chain) == 0 {
		return ErrNoMatch
	}
	for _, r := range secure {
		switch r.Usage {
		case UsageDANEEE:
			if ok, err := r.MatchesCertificate(chain[0]); err == nil && ok {
				return nil
			}
		case UsageDANETA:
			for _, c := range chain[1:] {
				if ok, err := r.MatchesCertificate(c); err == nil && ok {
					return nil
				}
			}
		}
	}
	return ErrNoMatch
}

// Usable reports whether the RRset makes DANE applicable for the host
// (at least one secure record with a usable usage). RFC 7672 senders that
// find usable TLSA records MUST prefer DANE over MTA-STS (RFC 8461 §2).
func Usable(records []Record) bool {
	for _, r := range records {
		if r.Secure && (r.Usage == UsageDANEEE || r.Usage == UsageDANETA) {
			return true
		}
	}
	return false
}
