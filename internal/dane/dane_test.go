package dane

import (
	"crypto/sha256"
	"crypto/sha512"
	"crypto/x509"
	"errors"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/pki"
)

func testChain(t *testing.T) []*x509.Certificate {
	t.Helper()
	ca, err := pki.NewCA("DANE Test CA", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.Issue(pki.IssueOptions{Names: []string{"mx.example.com"}})
	if err != nil {
		t.Fatal(err)
	}
	return []*x509.Certificate{leaf.Cert, ca.Cert}
}

func TestNewEE3Matches(t *testing.T) {
	chain := testChain(t)
	rec := NewEE3(chain[0])
	if rec.Usage != UsageDANEEE || rec.Selector != SelectorSPKI || rec.MatchingType != MatchingSHA256 {
		t.Fatalf("rec = %+v", rec)
	}
	ok, err := rec.MatchesCertificate(chain[0])
	if err != nil || !ok {
		t.Errorf("MatchesCertificate = %v, %v", ok, err)
	}
	// Different certificate does not match.
	other := testChain(t)
	ok, err = rec.MatchesCertificate(other[0])
	if err != nil || ok {
		t.Errorf("foreign cert matched: %v, %v", ok, err)
	}
}

func TestMatchingTypes(t *testing.T) {
	chain := testChain(t)
	leaf := chain[0]

	full := Record{Usage: UsageDANEEE, Selector: SelectorCert, MatchingType: MatchingFull,
		CertData: leaf.Raw, Secure: true}
	if ok, _ := full.MatchesCertificate(leaf); !ok {
		t.Error("full cert match failed")
	}

	s256 := sha256.Sum256(leaf.Raw)
	h256 := Record{Usage: UsageDANEEE, Selector: SelectorCert, MatchingType: MatchingSHA256,
		CertData: s256[:], Secure: true}
	if ok, _ := h256.MatchesCertificate(leaf); !ok {
		t.Error("sha256 cert match failed")
	}

	s512 := sha512.Sum512(leaf.RawSubjectPublicKeyInfo)
	h512 := Record{Usage: UsageDANEEE, Selector: SelectorSPKI, MatchingType: MatchingSHA512,
		CertData: s512[:], Secure: true}
	if ok, _ := h512.MatchesCertificate(leaf); !ok {
		t.Error("sha512 spki match failed")
	}

	bad := Record{Selector: 9}
	if _, err := bad.MatchesCertificate(leaf); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad selector err = %v", err)
	}
	bad = Record{Selector: SelectorCert, MatchingType: 9}
	if _, err := bad.MatchesCertificate(leaf); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad matching type err = %v", err)
	}
}

func TestVerify(t *testing.T) {
	chain := testChain(t)

	// DANE-EE success.
	if err := Verify([]Record{NewEE3(chain[0])}, chain); err != nil {
		t.Errorf("DANE-EE verify: %v", err)
	}

	// DANE-TA: hash of the issuing CA.
	sum := sha256.Sum256(chain[1].Raw)
	ta := Record{Usage: UsageDANETA, Selector: SelectorCert, MatchingType: MatchingSHA256,
		CertData: sum[:], Secure: true}
	if err := Verify([]Record{ta}, chain); err != nil {
		t.Errorf("DANE-TA verify: %v", err)
	}

	// Mismatched data.
	wrong := NewEE3(testChain(t)[0])
	if err := Verify([]Record{wrong}, chain); !errors.Is(err, ErrNoMatch) {
		t.Errorf("mismatch err = %v", err)
	}

	// Insecure records are ignored entirely.
	insecure := NewEE3(chain[0])
	insecure.Secure = false
	if err := Verify([]Record{insecure}, chain); !errors.Is(err, ErrInsecureTLSA) {
		t.Errorf("insecure err = %v", err)
	}

	// Empty RRset.
	if err := Verify(nil, chain); !errors.Is(err, ErrNoTLSARecords) {
		t.Errorf("empty err = %v", err)
	}

	// No chain presented.
	if err := Verify([]Record{NewEE3(chain[0])}, nil); !errors.Is(err, ErrNoMatch) {
		t.Errorf("no chain err = %v", err)
	}

	// PKIX usages are skipped for SMTP.
	px := NewEE3(chain[0])
	px.Usage = UsagePKIXEE
	if err := Verify([]Record{px}, chain); !errors.Is(err, ErrNoMatch) {
		t.Errorf("PKIX usage err = %v", err)
	}
}

func TestUsable(t *testing.T) {
	chain := testChain(t)
	rec := NewEE3(chain[0])
	if !Usable([]Record{rec}) {
		t.Error("secure EE record should be usable")
	}
	rec.Secure = false
	if Usable([]Record{rec}) {
		t.Error("insecure record should not be usable")
	}
	rec.Secure = true
	rec.Usage = UsagePKIXTA
	if Usable([]Record{rec}) {
		t.Error("PKIX-TA should not be usable for SMTP")
	}
	if Usable(nil) {
		t.Error("empty set usable")
	}
}

func TestRRRoundTrip(t *testing.T) {
	chain := testChain(t)
	rec := NewEE3(chain[0])
	rr := rec.RR("mx.example.com", 300)
	if rr.Name != "_25._tcp.mx.example.com" || rr.Type != dnsmsg.TypeTLSA {
		t.Fatalf("rr = %+v", rr)
	}
	back, err := FromRR(rr, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.Usage != rec.Usage || back.Selector != rec.Selector ||
		back.MatchingType != rec.MatchingType || !back.Secure {
		t.Errorf("round-trip = %+v", back)
	}
	ok, err := back.MatchesCertificate(chain[0])
	if err != nil || !ok {
		t.Error("round-tripped record no longer matches")
	}

	// FromRR rejects non-TLSA records.
	bad := dnsmsg.RR{Name: "x", Type: dnsmsg.TypeA, Data: dnsmsg.NewTXT("x")}
	if _, err := FromRR(bad, true); err == nil {
		t.Error("FromRR accepted non-TLSA record")
	}
}

func TestTLSAName(t *testing.T) {
	if TLSAName("mx.example.com") != "_25._tcp.mx.example.com" {
		t.Error("TLSAName mismatch")
	}
}
