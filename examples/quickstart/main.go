// Quickstart: boot a miniature Internet (authoritative DNS, HTTPS policy
// host, SMTP server with STARTTLS — all on loopback), deploy MTA-STS for
// one domain, and run the full validation pipeline against it with the
// public API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/netip"
	"strconv"
	"time"

	mtastsrepro "github.com/netsecurelab/mtasts"
	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnsserver"
	"github.com/netsecurelab/mtasts/internal/dnszone"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/policysrv"
	"github.com/netsecurelab/mtasts/internal/smtpd"
)

func main() {
	const domain = "example.com"
	mxHost := "mx." + domain

	// A test CA plays the web PKI.
	ca, err := pki.NewCA("Quickstart CA", time.Now())
	if err != nil {
		log.Fatal(err)
	}

	// 1. Authoritative DNS: the MTA-STS record, the policy host address,
	// and the MX records.
	zone := dnszone.New(domain)
	loopback := dnsmsg.AData{Addr: netip.MustParseAddr("127.0.0.1")}
	zone.MustAdd(dnsmsg.RR{Name: "_mta-sts." + domain, Type: dnsmsg.TypeTXT,
		Class: dnsmsg.ClassIN, TTL: 300, Data: dnsmsg.NewTXT("v=STSv1; id=20240929;")})
	zone.MustAdd(dnsmsg.RR{Name: "mta-sts." + domain, Type: dnsmsg.TypeA,
		Class: dnsmsg.ClassIN, TTL: 300, Data: loopback})
	zone.MustAdd(dnsmsg.RR{Name: domain, Type: dnsmsg.TypeMX,
		Class: dnsmsg.ClassIN, TTL: 300, Data: dnsmsg.MXData{Preference: 10, Host: mxHost}})
	zone.MustAdd(dnsmsg.RR{Name: mxHost, Type: dnsmsg.TypeA,
		Class: dnsmsg.ClassIN, TTL: 300, Data: loopback})

	dns := dnsserver.New(nil)
	dns.AddZone(zone)
	dnsAddr, err := dns.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer dns.Close()

	// 2. HTTPS policy host serving the well-known policy file.
	policy := mtasts.Policy{
		Version: mtasts.Version, Mode: mtasts.ModeEnforce,
		MaxAge: 604800, MXPatterns: []string{mxHost},
	}
	pol := policysrv.New(ca, nil)
	pol.AddTenant(&policysrv.Tenant{Domain: domain, Policy: policy})
	if _, err := pol.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer pol.Close()

	// 3. The MX host: an SMTP server with STARTTLS and a PKIX-valid
	// certificate.
	leaf, err := ca.Issue(pki.IssueOptions{Names: []string{mxHost}})
	if err != nil {
		log.Fatal(err)
	}
	cert := leaf.TLSCertificate()
	mx := smtpd.New(smtpd.Behavior{Hostname: mxHost, Certificate: &cert, AcceptMail: true})
	mxAddr, err := mx.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer mx.Close()
	_, smtpPortStr, err := net.SplitHostPort(mxAddr.String())
	if err != nil {
		log.Fatal(err)
	}
	smtpPort, err := strconv.Atoi(smtpPortStr)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Validate the deployment end-to-end with the public API.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	result := mtastsrepro.CheckDomain(ctx, domain, mtastsrepro.CheckOptions{
		DNSAddr:   dnsAddr.String(),
		Roots:     ca.Pool(),
		HTTPSPort: pol.Port(),
		SMTPPort:  smtpPort,
	})

	fmt.Println("MTA-STS deployment check for", domain)
	fmt.Printf("  record valid: %v (id=%s)\n", result.RecordValid, result.Record.ID)
	fmt.Printf("  policy:       mode=%s max_age=%d mx=%v\n",
		result.Policy.Mode, result.Policy.MaxAge, result.Policy.MXPatterns)
	for host, problem := range result.MXProblems {
		fmt.Printf("  mx %s: certificate %s\n", host, problem)
	}
	fmt.Printf("  mismatch:     %s\n", result.Mismatch.Kind)
	if result.Misconfigured() {
		fmt.Println("verdict: MISCONFIGURED —", result.Categories())
	} else {
		fmt.Println("verdict: OK — compliant senders will require verified TLS to", mxHost)
	}
}
