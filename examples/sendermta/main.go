// Sender MTA: a compliant sending mail server enforcing MTA-STS. The
// example provisions a recipient domain with an enforce policy, delivers a
// message through the full pipeline (record discovery → policy fetch over
// HTTPS → MX matching → STARTTLS with certificate verification → SMTP
// delivery), and then demonstrates the attack MTA-STS exists to stop: a
// DNS-poisoning adversary redirecting MX resolution to a rogue host. The
// cached enforce policy makes the sender refuse.
//
//	go run ./examples/sendermta
package main

import (
	"context"
	"fmt"
	"log"

	"net/netip"
	"time"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnsserver"
	"github.com/netsecurelab/mtasts/internal/dnszone"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/policysrv"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/smtpclient"
	"github.com/netsecurelab/mtasts/internal/smtpd"
)

// sendingMTA bundles the components a compliant sender runs: a DNS client,
// the MTA-STS validator with its TOFU cache, and the delivering SMTP
// client.
type sendingMTA struct {
	dns       *resolver.Client
	validator *mtasts.Validator
	ca        *pki.CA
	smtpAddr  map[string]string // MX host -> dial address (loopback lab)
}

// send delivers one message to the recipient domain, enforcing MTA-STS.
func (m *sendingMTA) send(ctx context.Context, domain, from, to string, body []byte) error {
	mxs, err := m.dns.LookupMX(ctx, domain)
	if err != nil || len(mxs) == 0 {
		return fmt.Errorf("no MX for %s: %v", domain, err)
	}
	mxHost := mxs[0].Host

	ev, err := m.validator.Validate(ctx, domain, mxHost)
	if err != nil {
		return err
	}
	fmt.Printf("  policy evaluation: record=%v policy=%v (cache=%v) mx-match=%v action=%s\n",
		ev.RecordFound, ev.PolicyFetched, ev.PolicyFromCache, ev.MXMatched, ev.Action)
	if ev.Action == mtasts.ActionRefuse {
		return fmt.Errorf("MTA-STS enforce policy forbids delivery via %s", mxHost)
	}

	sender := &smtpclient.Sender{
		HeloName:     "sender.lab",
		Roots:        m.ca.Pool(),
		RequireTLS:   ev.PolicyFetched && ev.Policy.Mode == mtasts.ModeEnforce,
		Timeout:      5 * time.Second,
		AddrOverride: m.smtpAddr[mxHost],
	}
	res, err := sender.Deliver(ctx, mxHost, from, []string{to}, body)
	if err != nil {
		return err
	}
	fmt.Printf("  delivered via %s (TLS=%v, certificate verified=%v)\n", mxHost, res.TLS, res.CertVerified)
	return nil
}

func main() {
	const domain = "recipient.com"
	goodMX := "mx." + domain

	ca, err := pki.NewCA("SenderMTA Lab CA", time.Now())
	if err != nil {
		log.Fatal(err)
	}

	// Recipient infrastructure.
	zone := dnszone.New(domain)
	loopback := dnsmsg.AData{Addr: netip.MustParseAddr("127.0.0.1")}
	zone.MustAdd(dnsmsg.RR{Name: "_mta-sts." + domain, Type: dnsmsg.TypeTXT,
		Class: dnsmsg.ClassIN, TTL: 300, Data: dnsmsg.NewTXT("v=STSv1; id=20240929;")})
	zone.MustAdd(dnsmsg.RR{Name: "mta-sts." + domain, Type: dnsmsg.TypeA,
		Class: dnsmsg.ClassIN, TTL: 300, Data: loopback})
	zone.MustAdd(dnsmsg.RR{Name: domain, Type: dnsmsg.TypeMX,
		Class: dnsmsg.ClassIN, TTL: 300, Data: dnsmsg.MXData{Preference: 10, Host: goodMX}})
	zone.MustAdd(dnsmsg.RR{Name: goodMX, Type: dnsmsg.TypeA,
		Class: dnsmsg.ClassIN, TTL: 300, Data: loopback})
	dns := dnsserver.New(nil)
	dns.AddZone(zone)
	dnsAddr, err := dns.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer dns.Close()

	pol := policysrv.New(ca, nil)
	pol.AddTenant(&policysrv.Tenant{Domain: domain, Policy: mtasts.Policy{
		Version: mtasts.Version, Mode: mtasts.ModeEnforce,
		MaxAge: 86400, MXPatterns: []string{goodMX},
	}})
	if _, err := pol.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer pol.Close()

	// The legitimate MX with a valid certificate.
	leaf, err := ca.Issue(pki.IssueOptions{Names: []string{goodMX}})
	if err != nil {
		log.Fatal(err)
	}
	cert := leaf.TLSCertificate()
	mx := smtpd.New(smtpd.Behavior{Hostname: goodMX, Certificate: &cert, AcceptMail: true})
	mxAddr, err := mx.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer mx.Close()

	// An attacker-controlled MX with a self-signed certificate.
	rogueLeaf, err := ca.Issue(pki.IssueOptions{Names: []string{"mx.attacker.net"}, SelfSigned: true})
	if err != nil {
		log.Fatal(err)
	}
	rogueCert := rogueLeaf.TLSCertificate()
	rogue := smtpd.New(smtpd.Behavior{Hostname: "mx.attacker.net", Certificate: &rogueCert, AcceptMail: true})
	rogueAddr, err := rogue.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer rogue.Close()

	// The sending MTA.
	dnsClient := resolver.New(dnsAddr.String())
	mta := &sendingMTA{
		dns: dnsClient,
		ca:  ca,
		smtpAddr: map[string]string{
			goodMX:            mxAddr.String(),
			"mx.attacker.net": rogueAddr.String(),
		},
		validator: &mtasts.Validator{
			Resolver: scanner.TXTResolverAdapter{Client: dnsClient},
			Fetcher: &mtasts.Fetcher{
				Resolver: mtasts.AddrResolverFunc(func(ctx context.Context, host string) ([]string, error) {
					addrs, err := dnsClient.LookupAddrs(ctx, host, false)
					if err != nil {
						return nil, err
					}
					out := make([]string, len(addrs))
					for i, a := range addrs {
						out[i] = a.String()
					}
					return out, nil
				}),
				RootCAs: ca.Pool(),
				Port:    pol.Port(),
				Timeout: 5 * time.Second,
			},
			Cache: mtasts.NewPolicyCache(64),
		},
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	fmt.Println("[1] normal delivery to", domain)
	if err := mta.send(ctx, domain, "alice@sender.lab", "bob@"+domain, []byte("Subject: hi\n\nhello over verified TLS\n")); err != nil {
		log.Fatal("unexpected failure: ", err)
	}
	fmt.Printf("  recipient inbox now holds %d message(s)\n\n", len(mx.Messages()))

	fmt.Println("[2] DNS-poisoning attack: MX redirected to mx.attacker.net")
	zone.Remove(domain, dnsmsg.TypeMX)
	zone.MustAdd(dnsmsg.RR{Name: domain, Type: dnsmsg.TypeMX,
		Class: dnsmsg.ClassIN, TTL: 300, Data: dnsmsg.MXData{Preference: 10, Host: "mx.attacker.net"}})
	attackerZone := dnszone.New("attacker.net")
	attackerZone.MustAdd(dnsmsg.RR{Name: "mx.attacker.net", Type: dnsmsg.TypeA,
		Class: dnsmsg.ClassIN, TTL: 300, Data: loopback})
	dns.AddZone(attackerZone)
	dnsClient.Cache.Flush()

	err = mta.send(ctx, domain, "alice@sender.lab", "bob@"+domain, []byte("Subject: secret\n\nintercept me\n"))
	if err == nil {
		log.Fatal("attack was NOT stopped — message delivered to the rogue MX")
	}
	fmt.Println("  delivery refused:", err)
	fmt.Printf("  rogue MX received %d message(s) — the downgrade attack failed\n", len(rogue.Messages()))

}
