// DANE first: the precedence rule §6.2 of the paper found violated in the
// wild (62 sender domains prefer MTA-STS over DANE, a known milter bug).
// This example signs the recipient zone with real DNSSEC, publishes both a
// TLSA record and an MTA-STS enforce policy, and shows that a compliant
// sender (1) delivers via DANE even though the MX certificate fails web-PKI
// validation, and (2) refuses on a TLSA mismatch even though MTA-STS alone
// would have allowed delivery — DANE must not be overridden.
//
//	go run ./examples/danefirst
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"time"

	"github.com/netsecurelab/mtasts/internal/dane"
	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnssec"
	"github.com/netsecurelab/mtasts/internal/dnsserver"
	"github.com/netsecurelab/mtasts/internal/dnszone"
	"github.com/netsecurelab/mtasts/internal/mta"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/policysrv"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/smtpd"
)

func main() {
	const domain = "secure.example"
	mxHost := "mx." + domain

	ca, err := pki.NewCA("DANE-first Lab CA", time.Now())
	if err != nil {
		log.Fatal(err)
	}

	// The MX presents a SELF-SIGNED certificate: web PKI (and therefore
	// MTA-STS) rejects it, but the TLSA record pins exactly this key.
	leaf, err := ca.Issue(pki.IssueOptions{Names: []string{mxHost}, SelfSigned: true})
	if err != nil {
		log.Fatal(err)
	}
	cert := leaf.TLSCertificate()
	mx := smtpd.New(smtpd.Behavior{Hostname: mxHost, Certificate: &cert, AcceptMail: true})
	mxAddr, err := mx.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer mx.Close()

	// Recipient zone: MX, MTA-STS record, TLSA record — then sign it.
	zone := dnszone.New("example")
	loop := dnsmsg.AData{Addr: netip.MustParseAddr("127.0.0.1")}
	zone.MustAdd(dnsmsg.RR{Name: domain, Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.MXData{Preference: 10, Host: mxHost}})
	zone.MustAdd(dnsmsg.RR{Name: mxHost, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 300, Data: loop})
	zone.MustAdd(dnsmsg.RR{Name: "_mta-sts." + domain, Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN,
		TTL: 300, Data: dnsmsg.NewTXT("v=STSv1; id=20240929;")})
	zone.MustAdd(dnsmsg.RR{Name: "mta-sts." + domain, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN,
		TTL: 300, Data: loop})
	zone.MustAdd(dane.NewEE3(leaf.Cert).RR(mxHost, 300))

	signer, err := dnssec.NewSigner("example")
	if err != nil {
		log.Fatal(err)
	}
	now := time.Now()
	if _, err := dnssec.SignZone(zone, signer, now.Add(-time.Hour), now.Add(24*time.Hour)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("zone 'example' signed (ECDSA P-256); trust anchor:", signer.DS().Data)

	dns := dnsserver.New(nil)
	dns.AddZone(zone)
	dnsAddr, err := dns.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer dns.Close()

	// MTA-STS policy host (policy authorizes the MX, mode enforce).
	pol := policysrv.New(ca, nil)
	pol.AddTenant(&policysrv.Tenant{Domain: domain, Policy: mtasts.Policy{
		Version: mtasts.Version, Mode: mtasts.ModeEnforce, MaxAge: 86400,
		MXPatterns: []string{mxHost},
	}})
	if _, err := pol.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer pol.Close()

	// A compliant outbound MTA with a chain-validating resolver.
	dnsClient := resolver.New(dnsAddr.String())
	validator := dnssec.NewValidator(dnsClient)
	if err := validator.AddAnchor(signer.DS()); err != nil {
		log.Fatal(err)
	}
	outbound := &mta.Outbound{
		DNS: dnsClient,
		Validator: &mtasts.Validator{
			Resolver: scanner.TXTResolverAdapter{Client: dnsClient},
			Fetcher: &mtasts.Fetcher{
				Resolver: mtasts.AddrResolverFunc(func(ctx context.Context, host string) ([]string, error) {
					addrs, err := dnsClient.LookupAddrs(ctx, host, false)
					if err != nil {
						return nil, err
					}
					out := make([]string, len(addrs))
					for i, a := range addrs {
						out[i] = a.String()
					}
					return out, nil
				}),
				RootCAs: ca.Pool(), Port: pol.Port(), Timeout: 5 * time.Second,
			},
			Cache: mtasts.NewPolicyCache(16),
		},
		Roots:        ca.Pool(),
		HeloName:     "danefirst.lab",
		AddrOverride: func(string) string { return mxAddr.String() },
		DANEEnabled:  true,
		DNSSEC:       validator,
		Timeout:      5 * time.Second,
	}
	ctx := context.Background()

	fmt.Println("\n[1] MX cert is self-signed (web PKI would refuse); TLSA pins it")
	out, err := outbound.Send(ctx, "a@sender.lab", []string{"b@" + domain}, []byte("Subject: dane\n\nvia DANE\n"))
	if err != nil {
		log.Fatal("delivery failed: ", err)
	}
	fmt.Printf("    delivered via %s (mechanism=%s, cert verified by TLSA=%v)\n",
		out.MXHost, out.Mechanism, out.CertVerified)

	fmt.Println("\n[2] attacker swaps the MX key; TLSA no longer matches")
	rogueLeaf, err := ca.Issue(pki.IssueOptions{Names: []string{mxHost}, SelfSigned: true})
	if err != nil {
		log.Fatal(err)
	}
	rogueCert := rogueLeaf.TLSCertificate()
	mx.SetBehavior(smtpd.Behavior{Hostname: mxHost, Certificate: &rogueCert, AcceptMail: true})
	dnsClient.Cache.Flush()

	_, err = outbound.Send(ctx, "a@sender.lab", []string{"b@" + domain}, []byte("Subject: mitm\n\nintercept\n"))
	if err == nil {
		log.Fatal("delivery succeeded despite TLSA mismatch")
	}
	fmt.Println("    delivery refused:", err)
	fmt.Println("    MTA-STS was never consulted: DANE takes precedence and must not be overridden")
}
