// Delegation: third-party MTA-STS policy hosting (§2.5 / §5 of the paper).
// A customer delegates policy hosting to a provider via CNAME; the example
// shows a working delegation, then replays the incomplete-opt-out failure
// modes of Table 2 — the customer leaves the provider but forgets the
// CNAME — and measures what a sender sees for each provider's behavior.
//
//	go run ./examples/delegation
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/policysrv"
)

func main() {
	const customer = "customer.com"
	policy := mtasts.Policy{
		Version: mtasts.Version, Mode: mtasts.ModeEnforce,
		MaxAge: 86400, MXPatterns: []string{"mx." + customer},
	}

	ca, err := pki.NewCA("Delegation Lab CA", time.Now())
	if err != nil {
		log.Fatal(err)
	}

	// The provider's multi-tenant policy host.
	host := policysrv.New(ca, nil)
	if _, err := host.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer host.Close()

	fetcher := &mtasts.Fetcher{
		Resolver: mtasts.AddrResolverFunc(func(ctx context.Context, h string) ([]string, error) {
			return []string{"127.0.0.1"}, nil
		}),
		RootCAs: ca.Pool(),
		Port:    host.Port(),
		Timeout: 5 * time.Second,
	}
	ctx := context.Background()

	fmt.Println("[1] active delegation")
	provider, _ := policysrv.LookupProvider("DMARCReport")
	host.AddTenant(&policysrv.Tenant{Domain: customer, Policy: policy})
	canonical := provider.CanonicalName(customer)
	if err := host.AddAlias(customer, canonical); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  CNAME: mta-sts.%s -> %s\n", customer, canonical)
	got, _, err := fetcher.Fetch(ctx, customer)
	if err != nil {
		log.Fatal("fetch through delegation failed: ", err)
	}
	fmt.Printf("  fetched policy: mode=%s mx=%v — delegation works\n\n", got.Mode, got.MXPatterns)

	fmt.Println("[2] incomplete opt-out: the customer leaves each provider but keeps the CNAME")
	for _, p := range policysrv.Registry {
		host.RemoveTenant(customer)
		tenant, served := p.OptOutTenant(customer, policy)
		var observed string
		if !served {
			// The provider answers NXDOMAIN for the canonical name; the
			// sender cannot resolve the policy host at all.
			observed = "DNS failure (policy host unresolvable) -> sender falls back to opportunistic TLS"
		} else {
			host.AddTenant(&tenant)
			_, _, err := fetcher.Fetch(ctx, customer)
			switch {
			case err == nil:
				observed = fmt.Sprintf("stale policy still served (mode=%s) -> delivery risk if MX records change", tenant.Policy.Mode)
				if tenant.Policy.Mode == mtasts.ModeNone {
					observed = "policy rewritten to mode=none -> MTA-STS gracefully disabled"
				}
			case mtasts.StageOf(err) == mtasts.StageTLS:
				observed = fmt.Sprintf("TLS failure (%s certificate) -> sender falls back", mtasts.CertProblemOf(err))
			case mtasts.StageOf(err) == mtasts.StageSyntax:
				observed = "empty/invalid policy file -> treated like mode none"
			default:
				observed = fmt.Sprintf("fetch fails at %s stage", mtasts.StageOf(err))
			}
		}
		fmt.Printf("  %-13s %s\n", p.Name+":", observed)
	}

	fmt.Println("\nNone of the registry providers implements the RFC 8461 §8.3 wind-down")
	fmt.Println("(publish mode=none with a short max_age, then remove) — matching §5 of the paper.")
}
