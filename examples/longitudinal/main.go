// Longitudinal: a miniature rerun of the paper's study. Generate a scaled
// synthetic ecosystem, scan it monthly over the component-scan period with
// the same pipeline the live scanner uses, and print the misconfiguration
// series (the Figure 4 analog) plus the final-snapshot breakdown.
//
//	go run ./examples/longitudinal [-scale 0.05] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/netsecurelab/mtasts/internal/dataset"
	"github.com/netsecurelab/mtasts/internal/report"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/simnet"
)

func main() {
	scale := flag.Float64("scale", 0.05, "population scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 7, "world seed")
	flag.Parse()

	world := simnet.Generate(simnet.Config{Seed: *seed, Scale: *scale})
	fmt.Printf("generated %d MTA-STS domains (scale %.2f)\n\n", len(world.Domains), *scale)

	series := map[scanner.Category][]float64{}
	var labels []string
	var last scanner.Summary
	for t := simnet.ComponentScanFirstIndex; t < simnet.Months; t++ {
		results := world.ScanSnapshot(t)
		s := scanner.Summarize(results)
		last = s
		labels = append(labels, dataset.MonthLabel(simnet.SnapshotTime(t)))
		for _, c := range []scanner.Category{
			scanner.CategoryDNSRecord, scanner.CategoryPolicy,
			scanner.CategoryMXCert, scanner.CategoryInconsistency,
		} {
			pct := 0.0
			if s.WithRecord > 0 {
				pct = 100 * float64(s.ByCategory[c]) / float64(s.WithRecord)
			}
			series[c] = append(series[c], pct)
		}
		fmt.Printf("  %s: %5d domains, %4d misconfigured (%.1f%%)\n",
			labels[len(labels)-1], s.WithRecord, s.Misconfigured,
			100*float64(s.Misconfigured)/float64(s.WithRecord))
	}
	fmt.Println()

	var chartSeries []dataset.Series
	for _, c := range []scanner.Category{
		scanner.CategoryDNSRecord, scanner.CategoryPolicy,
		scanner.CategoryMXCert, scanner.CategoryInconsistency,
	} {
		s := dataset.Series{Name: c.String()}
		for i, v := range series[c] {
			s.Points = append(s.Points, dataset.Point{Label: labels[i], Value: v})
		}
		chartSeries = append(chartSeries, s)
	}
	chart := report.Chart{
		Title:  "Misconfigured MTA-STS domains by category (Figure 4 analog)",
		YLabel: "% of MTA-STS domains",
		Height: 12,
		Series: chartSeries,
	}
	chart.Write(os.Stdout)

	fmt.Println()
	tbl := &dataset.Table{Title: "Final snapshot breakdown", Headers: []string{"metric", "count"}}
	tbl.AddRow("MTA-STS domains", last.WithRecord)
	tbl.AddRow("misconfigured", last.Misconfigured)
	for c, n := range last.ByCategory {
		tbl.AddRow("  "+c.String(), n)
	}
	for stage, n := range last.PolicyStageCounts {
		tbl.AddRow("    policy stage "+stage, n)
	}
	tbl.AddRow("delivery failures", last.DeliveryFailures)
	report.WriteTable(os.Stdout, tbl)
}
