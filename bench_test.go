package mtastsrepro

// One benchmark per table and figure of the paper (the harness of
// deliverable (d)): each BenchmarkTableN/BenchmarkFigureN regenerates that
// artifact from the synthetic ecosystem, so `go test -bench .` replays the
// full evaluation. Core-primitive micro-benchmarks follow at the bottom.
//
// The shared environment uses a 0.10 population scale to keep -bench runs
// quick; cmd/reproduce regenerates everything at paper scale (1.0).

import (
	"io"
	"sync"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnssec"
	"github.com/netsecurelab/mtasts/internal/experiments"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/simnet"
	"github.com/netsecurelab/mtasts/internal/strutil"
	"github.com/netsecurelab/mtasts/internal/survey"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

// env returns the shared benchmark environment with all component
// snapshots pre-scanned, so each figure benchmark measures regeneration of
// its artifact rather than first-scan warm-up.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv = experiments.NewEnv(simnet.Config{Seed: 1, Scale: 0.10})
		for _, t := range experiments.ComponentSnapshots() {
			benchEnv.Scan(t)
		}
	})
	return benchEnv
}

func BenchmarkTable1(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := e.Table1(); len(tbl.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := e.Figure2(); len(s) != 4 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := e.Figure3(); len(s.Points) != simnet.TrancoBins {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := e.Figure4(); len(s) != 4 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		selfPanel, thirdPanel := e.Figure5()
		if len(selfPanel) != 5 || len(thirdPanel) != 5 {
			b.Fatal("bad panels")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		selfPanel, thirdPanel := e.Figure6()
		if len(selfPanel) != 3 || len(thirdPanel) != 3 {
			b.Fatal("bad panels")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := e.Figure7(); len(s) != 3 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := e.Figure8(); len(s) != 5 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := e.Figure9(); len(s.Points) == 0 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := e.Figure10(); len(s) != 2 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := e.Figure11(); len(tbl.Rows) != 5 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top, bottom := e.Figure12()
		if len(top) != 4 || len(bottom) != 4 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := e.Table2(); len(tbl.Rows) != 8 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkRecordErrorBreakdown(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := e.RecordErrorBreakdown(); len(tbl.Rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkSenderSide(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := e.SenderSide(); len(tbl.Rows) == 0 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkSurveyFindings(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := e.SurveyFindings(); len(tbl.Rows) == 0 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkDisclosure(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := e.Disclosure(); len(tbl.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkRunAll regenerates the entire evaluation.
func BenchmarkRunAll(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := e.RunAll(io.Discard); len(rows) == 0 {
			b.Fatal("no comparison rows")
		}
	}
}

// BenchmarkSnapshotScan measures the offline scan of one full monthly
// snapshot — the unit of the longitudinal pipeline.
func BenchmarkSnapshotScan(b *testing.B) {
	w := simnet.Generate(simnet.Config{Seed: 1, Scale: 0.10})
	last := simnet.Months - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := w.ScanSnapshot(last)
		if len(results) == 0 {
			b.Fatal("empty scan")
		}
	}
}

// BenchmarkWorldGeneration measures ecosystem synthesis.
func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := simnet.Generate(simnet.Config{Seed: int64(i), Scale: 0.10})
		if len(w.Domains) == 0 {
			b.Fatal("empty world")
		}
	}
}

// --- Core-primitive micro-benchmarks ---

func BenchmarkParseRecord(b *testing.B) {
	txt := "v=STSv1; id=20240929; extension=value;"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRecord(txt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParsePolicy(b *testing.B) {
	body := []byte("version: STSv1\r\nmode: enforce\r\nmx: mail.example.com\r\nmx: *.example.net\r\nmx: backupmx.example.com\r\nmax_age: 604800\r\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParsePolicy(body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchMX(b *testing.B) {
	p := Policy{MXPatterns: []string{"mail.example.com", "*.backup.example.com", "mx2.example.com"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Matches("host7.backup.example.com") {
			b.Fatal("no match")
		}
	}
}

func BenchmarkScanArtifacts(b *testing.B) {
	now := time.Now()
	a := Artifacts{
		Domain:             "example.com",
		TXT:                []string{"v=STSv1; id=20240929;"},
		MXHosts:            []string{"mx.example.com"},
		PolicyHostResolves: true,
		TCPOpen:            true,
		PolicyCert:         GoodCertProfile(now, "mta-sts.example.com"),
		HTTPStatus:         200,
		PolicyBody:         []byte("version: STSv1\nmode: enforce\nmx: mx.example.com\nmax_age: 86400\n"),
		MXSTARTTLS:         map[string]bool{"mx.example.com": true},
		MXCerts:            map[string]CertProfile{"mx.example.com": GoodCertProfile(now, "mx.example.com")},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ScanArtifacts(a, now)
		if r.Misconfigured() {
			b.Fatal("clean domain misconfigured")
		}
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if strutil.Levenshtein("mx1.mail.example.com", "mx1.mali.example.com") != 2 {
			b.Fatal("bad distance")
		}
	}
}

func BenchmarkDNSMessagePack(b *testing.B) {
	m := dnsmsg.NewQuery(42, "_mta-sts.example.com", dnsmsg.TypeTXT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSMessageUnpack(b *testing.B) {
	m := &dnsmsg.Message{
		Header:    dnsmsg.Header{ID: 42, Response: true},
		Questions: []dnsmsg.Question{{Name: "_mta-sts.example.com", Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN}},
		Answers: []dnsmsg.RR{{Name: "_mta-sts.example.com", Type: dnsmsg.TypeTXT,
			Class: dnsmsg.ClassIN, TTL: 300, Data: dnsmsg.NewTXT("v=STSv1; id=20240929;")}},
	}
	wire, err := m.Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dnsmsg.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyCache(b *testing.B) {
	pc := mtasts.NewPolicyCache(1024)
	p := mtasts.Policy{Version: mtasts.Version, Mode: mtasts.ModeEnforce,
		MaxAge: 86400, MXPatterns: []string{"mx.example.com"}}
	pc.Store("example.com", p, "id1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := pc.Get("example.com"); !ok {
			b.Fatal("cache miss")
		}
	}
}

func BenchmarkSurveyTabulate(b *testing.B) {
	ds := survey.NewPaperDataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := ds.Tabulate()
		if f.Familiar != 89 {
			b.Fatal("bad tabulation")
		}
	}
}

// BenchmarkSummarize measures aggregation over a scanned snapshot.
func BenchmarkSummarize(b *testing.B) {
	e := env(b)
	results := e.Scan(simnet.Months - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := scanner.Summarize(results)
		if s.WithRecord == 0 {
			b.Fatal("empty summary")
		}
	}
}

// --- DNSSEC substrate benchmarks ---

func BenchmarkDNSSECSign(b *testing.B) {
	s, err := dnssec.NewSigner("bench.example")
	if err != nil {
		b.Fatal(err)
	}
	rrset := []dnsmsg.RR{{
		Name: "_25._tcp.mx.bench.example", Type: dnsmsg.TypeTLSA, Class: dnsmsg.ClassIN,
		TTL: 300, Data: dnsmsg.TLSAData{Usage: 3, Selector: 1, MatchingType: 1,
			CertData: make([]byte, 32)},
	}}
	incept, expire := time.Now().Add(-time.Hour), time.Now().Add(24*time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sign(rrset, incept, expire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSSECVerify(b *testing.B) {
	s, err := dnssec.NewSigner("bench.example")
	if err != nil {
		b.Fatal(err)
	}
	rrset := []dnsmsg.RR{{
		Name: "_25._tcp.mx.bench.example", Type: dnsmsg.TypeTLSA, Class: dnsmsg.ClassIN,
		TTL: 300, Data: dnsmsg.TLSAData{Usage: 3, Selector: 1, MatchingType: 1,
			CertData: make([]byte, 32)},
	}}
	now := time.Now()
	sigRR, err := s.Sign(rrset, now.Add(-time.Hour), now.Add(24*time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	sig := sigRR.Data.(dnsmsg.RRSIGData)
	dk := s.DNSKEY().Data.(dnsmsg.DNSKEYData)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dnssec.VerifyRRSIG(rrset, sig, dk, now); err != nil {
			b.Fatal(err)
		}
	}
}
