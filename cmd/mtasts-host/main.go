// Command mtasts-host runs an MTA-STS policy host: a TLS web server
// serving "/.well-known/mta-sts.txt" for one or more policy domains, with
// certificates issued from a local test CA (written to disk so clients can
// trust it). It can emulate a third-party hosting provider — including the
// Table 2 opt-out behaviors — or a plain self-managed policy server, and
// optionally inject the failure modes the paper measures.
//
// Usage:
//
//	mtasts-host -listen 127.0.0.1:8443 -ca-out ca.pem \
//	    -domain example.com -mode enforce -mx mx1.example.com -mx '*.example.com'
//
//	# emulate a provider with a misbehaving tenant:
//	mtasts-host -listen :8443 -ca-out ca.pem \
//	    -domain good.com -mx mx.good.com \
//	    -domain broken.com -mx mx.broken.com -cert-mode expired
package main

import (
	"encoding/pem"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/policysrv"
)

// tenantFlags accumulates repeated -domain/-mx/-mode/-cert-mode groups: a
// new -domain starts a new tenant; the other flags apply to the last one.
type tenantFlags struct {
	tenants []*policysrv.Tenant
}

func (tf *tenantFlags) last() *policysrv.Tenant {
	if len(tf.tenants) == 0 {
		tf.tenants = append(tf.tenants, newTenant("example.com"))
	}
	return tf.tenants[len(tf.tenants)-1]
}

func newTenant(domain string) *policysrv.Tenant {
	return &policysrv.Tenant{
		Domain: domain,
		Policy: mtasts.Policy{Version: mtasts.Version, Mode: mtasts.ModeTesting, MaxAge: 86400},
	}
}

func main() {
	var tf tenantFlags
	listen := flag.String("listen", "127.0.0.1:8443", "HTTPS listen address")
	caOut := flag.String("ca-out", "", "write the test CA certificate (PEM) to this file")
	flag.Func("domain", "policy domain (repeatable; starts a new tenant)", func(v string) error {
		tf.tenants = append(tf.tenants, newTenant(v))
		return nil
	})
	flag.Func("mx", "mx pattern for the current tenant (repeatable)", func(v string) error {
		if err := mtasts.CheckMXPattern(v); err != nil {
			return err
		}
		t := tf.last()
		t.Policy.MXPatterns = append(t.Policy.MXPatterns, v)
		return nil
	})
	flag.Func("mode", "policy mode for the current tenant (enforce|testing|none)", func(v string) error {
		m := mtasts.Mode(v)
		if !m.Valid() {
			return fmt.Errorf("invalid mode %q", v)
		}
		tf.last().Policy.Mode = m
		return nil
	})
	flag.Func("max-age", "policy max_age seconds for the current tenant", func(v string) error {
		var n int64
		if _, err := fmt.Sscanf(v, "%d", &n); err != nil || n < 0 || n > mtasts.MaxMaxAge {
			return fmt.Errorf("invalid max_age %q", v)
		}
		tf.last().Policy.MaxAge = n
		return nil
	})
	flag.Func("cert-mode", "certificate behavior for the current tenant (good|expired|self-signed|wrong-name|missing)", func(v string) error {
		m, err := parseCertMode(v)
		if err != nil {
			return err
		}
		tf.last().CertMode = m
		return nil
	})
	flag.Func("http-mode", "HTTP behavior for the current tenant (policy|404|500|redirect|empty|garbage)", func(v string) error {
		m, err := parseHTTPMode(v)
		if err != nil {
			return err
		}
		tf.last().HTTPMode = m
		return nil
	})
	provider := flag.String("provider", "", "emulate this Table 2 provider (adds its canonical-name aliases)")
	flag.Parse()

	if len(tf.tenants) == 0 {
		fmt.Fprintln(os.Stderr, "at least one -domain is required")
		flag.Usage()
		os.Exit(2)
	}
	for _, t := range tf.tenants {
		if t.Policy.Mode != mtasts.ModeNone && len(t.Policy.MXPatterns) == 0 {
			fmt.Fprintf(os.Stderr, "tenant %s: enforce/testing policy needs at least one -mx\n", t.Domain)
			os.Exit(2)
		}
	}

	ca, err := pki.NewCA("mtasts-host test CA", time.Now())
	if err != nil {
		fmt.Fprintln(os.Stderr, "creating CA:", err)
		os.Exit(1)
	}
	if *caOut != "" {
		pemBytes := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: ca.Cert.Raw})
		if err := os.WriteFile(*caOut, pemBytes, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "writing CA:", err)
			os.Exit(1)
		}
		fmt.Println("test CA certificate written to", *caOut)
	}

	srv := policysrv.New(ca, nil)
	for _, t := range tf.tenants {
		srv.AddTenant(t)
		fmt.Printf("serving %s (mode=%s, mx=%v, cert=%v)\n",
			mtasts.PolicyHost(t.Domain), t.Policy.Mode, t.Policy.MXPatterns, t.CertMode)
		if *provider != "" {
			p, ok := policysrv.LookupProvider(*provider)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown provider %q\n", *provider)
				os.Exit(2)
			}
			alias := p.CanonicalName(t.Domain)
			if err := srv.AddAlias(t.Domain, alias); err != nil {
				fmt.Fprintln(os.Stderr, "adding alias:", err)
				os.Exit(1)
			}
			fmt.Printf("  alias %s (provider %s)\n", alias, p.Name)
		}
	}
	addr, err := srv.Start(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starting server:", err)
		os.Exit(1)
	}
	fmt.Println("policy host listening on", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "shutdown:", err)
		os.Exit(1)
	}
}

func parseCertMode(v string) (policysrv.CertMode, error) {
	switch strings.ToLower(v) {
	case "good":
		return policysrv.CertGood, nil
	case "expired":
		return policysrv.CertExpired, nil
	case "self-signed", "selfsigned":
		return policysrv.CertSelfSigned, nil
	case "wrong-name", "wrongname":
		return policysrv.CertWrongName, nil
	case "missing":
		return policysrv.CertMissing, nil
	}
	return 0, fmt.Errorf("unknown cert mode %q", v)
}

func parseHTTPMode(v string) (policysrv.HTTPMode, error) {
	switch strings.ToLower(v) {
	case "policy":
		return policysrv.HTTPServePolicy, nil
	case "404":
		return policysrv.HTTPNotFound, nil
	case "500":
		return policysrv.HTTPServerError, nil
	case "redirect":
		return policysrv.HTTPRedirect, nil
	case "empty":
		return policysrv.HTTPEmptyBody, nil
	case "garbage":
		return policysrv.HTTPGarbage, nil
	}
	return 0, fmt.Errorf("unknown HTTP mode %q", v)
}
