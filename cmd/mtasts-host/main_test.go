package main

import (
	"testing"

	"github.com/netsecurelab/mtasts/internal/policysrv"
)

func TestParseCertMode(t *testing.T) {
	cases := map[string]policysrv.CertMode{
		"good": policysrv.CertGood, "GOOD": policysrv.CertGood,
		"expired": policysrv.CertExpired, "self-signed": policysrv.CertSelfSigned,
		"selfsigned": policysrv.CertSelfSigned, "wrong-name": policysrv.CertWrongName,
		"missing": policysrv.CertMissing,
	}
	for in, want := range cases {
		got, err := parseCertMode(in)
		if err != nil || got != want {
			t.Errorf("parseCertMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseCertMode("bogus"); err == nil {
		t.Error("bogus cert mode accepted")
	}
}

func TestParseHTTPMode(t *testing.T) {
	cases := map[string]policysrv.HTTPMode{
		"policy": policysrv.HTTPServePolicy, "404": policysrv.HTTPNotFound,
		"500": policysrv.HTTPServerError, "redirect": policysrv.HTTPRedirect,
		"empty": policysrv.HTTPEmptyBody, "garbage": policysrv.HTTPGarbage,
	}
	for in, want := range cases {
		got, err := parseHTTPMode(in)
		if err != nil || got != want {
			t.Errorf("parseHTTPMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseHTTPMode("bogus"); err == nil {
		t.Error("bogus HTTP mode accepted")
	}
}

func TestTenantFlags(t *testing.T) {
	var tf tenantFlags
	// last() on empty state creates a default tenant.
	def := tf.last()
	if def.Domain != "example.com" {
		t.Errorf("default tenant = %+v", def)
	}
	tf.tenants = append(tf.tenants, newTenant("two.example"))
	if tf.last().Domain != "two.example" {
		t.Error("last() does not track the newest tenant")
	}
}
