package main

import (
	"bytes"
	"encoding/pem"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnsserver"
	"github.com/netsecurelab/mtasts/internal/dnszone"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/policysrv"
	"github.com/netsecurelab/mtasts/internal/smtpd"
)

// sendSmoke gates the crash-restart smoke: it builds the real binary and
// exercises the durable cache across two separate processes. Run via
// make smoke-send.
var sendSmoke = flag.Bool("sendsmoke", false, "run the mtasts-send crash-restart smoke (builds the binary)")

// cacheStats matches the stats line run() prints to stderr.
var cacheStatsRe = regexp.MustCompile(
	`policy cache: entries=(\d+) hits=(\d+) misses=(\d+) stale_served=(\d+) refresh_failures=(\d+) collapsed=(\d+)`)

type smokeLab struct {
	dnsAddr   string
	httpsPort int
	smtpPort  int
	caFile    string
	pol       *policysrv.Server
	inbox     *smtpd.Server
}

// newSmokeLab boots DNS + policy + SMTP servers for the recipient domain
// smoke.test; the binary resolves mx.smoke.test through the lab DNS.
func newSmokeLab(t *testing.T) *smokeLab {
	t.Helper()
	ca, err := pki.NewCA("Send Smoke CA", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	caFile := filepath.Join(t.TempDir(), "ca.pem")
	pemBytes := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: ca.Cert.Raw})
	if err := os.WriteFile(caFile, pemBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	zone := dnszone.New("test")
	dns := dnsserver.New(nil)
	dns.AddZone(zone)
	dnsAddr, err := dns.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := dns.Close(); err != nil {
			t.Error(err)
		}
	})

	pol := policysrv.New(ca, nil)
	if _, err := pol.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	pol.AddTenant(&policysrv.Tenant{Domain: "smoke.test", Policy: mtasts.Policy{
		Version: mtasts.Version, Mode: mtasts.ModeEnforce,
		MaxAge: 86400, MXPatterns: []string{"mx.smoke.test"},
	}})

	leaf, err := ca.Issue(pki.IssueOptions{Names: []string{"mx.smoke.test"}})
	if err != nil {
		t.Fatal(err)
	}
	cert := leaf.TLSCertificate()
	inbox := smtpd.New(smtpd.Behavior{Hostname: "mx.smoke.test", Certificate: &cert, AcceptMail: true})
	smtpAddr, err := inbox.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := inbox.Close(); err != nil {
			t.Error(err)
		}
	})

	loop := netip.MustParseAddr("127.0.0.1")
	zone.MustAdd(dnsmsg.RR{Name: "smoke.test", Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.MXData{Preference: 10, Host: "mx.smoke.test"}})
	zone.MustAdd(dnsmsg.RR{Name: "_mta-sts.smoke.test", Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN,
		TTL: 60, Data: dnsmsg.NewTXT("v=STSv1; id=20260808;")})
	zone.MustAdd(dnsmsg.RR{Name: "mta-sts.smoke.test", Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN,
		TTL: 60, Data: dnsmsg.AData{Addr: loop}})
	zone.MustAdd(dnsmsg.RR{Name: "mx.smoke.test", Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN,
		TTL: 60, Data: dnsmsg.AData{Addr: loop}})

	smtpPort, err := strconv.Atoi(smtpAddr.String()[len("127.0.0.1:"):])
	if err != nil {
		t.Fatal(err)
	}
	return &smokeLab{
		dnsAddr:   dnsAddr.String(),
		httpsPort: pol.Port(),
		smtpPort:  smtpPort,
		caFile:    caFile,
		pol:       pol,
		inbox:     inbox,
	}
}

// runSend invokes the built binary once and returns its stdout plus the
// parsed cache stats (entries, hits, misses, stale, refreshfail,
// collapsed).
func runSend(t *testing.T, bin string, lab *smokeLab, cacheDir string) (string, []int) {
	t.Helper()
	cmd := exec.Command(bin,
		"-dns", lab.dnsAddr,
		"-from", "alice@sender.test",
		"-to", "bob@smoke.test",
		"-smtp-port", strconv.Itoa(lab.smtpPort),
		"-https-port", strconv.Itoa(lab.httpsPort),
		"-ca", lab.caFile,
		"-cache-dir", cacheDir,
		"-timeout", "5s",
	)
	cmd.Stdin = bytes.NewReader([]byte("Subject: smoke\r\n\r\nhello\r\n"))
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("mtasts-send failed: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
	}
	m := cacheStatsRe.FindStringSubmatch(stderr.String())
	if m == nil {
		t.Fatalf("no cache stats line in stderr: %s", stderr.String())
	}
	stats := make([]int, 6)
	for i := range stats {
		n, err := strconv.Atoi(m[i+1])
		if err != nil {
			t.Fatal(err)
		}
		stats[i] = n
	}
	return stdout.String(), stats
}

// TestSmokeSend is the crash-restart drill of the durable policy cache:
// a cold send populates -cache-dir, the policy host is killed, and a
// second process delivers warm — enforcing the cached policy with zero
// policy fetches while the host is down.
func TestSmokeSend(t *testing.T) {
	if !*sendSmoke {
		t.Skip("run via make smoke-send (-sendsmoke not set)")
	}
	bin := filepath.Join(t.TempDir(), "mtasts-send")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	lab := newSmokeLab(t)
	cacheDir := filepath.Join(t.TempDir(), "cache")

	// Cold process: discovers the record, fetches the policy, delivers.
	stdout, stats := runSend(t, bin, lab, cacheDir)
	if !regexp.MustCompile(`delivered to mx\.smoke\.test via mta-sts`).MatchString(stdout) {
		t.Fatalf("cold run did not deliver via MTA-STS: %s", stdout)
	}
	if entries, hits, misses := stats[0], stats[1], stats[2]; entries != 1 || hits != 0 || misses != 1 {
		t.Fatalf("cold stats = %v, want entries=1 hits=0 misses=1", stats)
	}

	// Kill the policy host: from here, any refetch attempt would fail.
	if err := lab.pol.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm process ("restart"): the TOFU state must come back from disk
	// and serve the delivery with zero policy fetches.
	stdout, stats = runSend(t, bin, lab, cacheDir)
	if !regexp.MustCompile(`delivered to mx\.smoke\.test via mta-sts`).MatchString(stdout) {
		t.Fatalf("warm run did not deliver via MTA-STS: %s", stdout)
	}
	if entries, hits, misses := stats[0], stats[1], stats[2]; entries != 1 || hits != 1 || misses != 0 {
		t.Fatalf("warm stats = %v, want entries=1 hits=1 misses=0 (a miss means it tried to refetch)", stats)
	}
	if got := len(lab.inbox.Messages()); got != 2 {
		t.Fatalf("inbox has %d messages, want 2", got)
	}
	fmt.Println("smoke-send: TOFU state survived restart; warm delivery enforced with zero refetches")
}
