// Command mtasts-send delivers a message as a compliant sending MTA:
// DANE-first transport security, MTA-STS enforcement with a TOFU cache,
// multi-MX failover, and an optional RFC 8460 TLSRPT report of the
// attempt. Message data is read from stdin.
//
// Usage:
//
//	echo "Subject: hi" | mtasts-send -dns 127.0.0.1:5353 \
//	    -from alice@sender.example -to bob@recipient.example \
//	    [-smtp-port 25] [-https-port 443] [-dane] [-tlsrpt report.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/netsecurelab/mtasts/internal/mta"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/tlsrpt"
)

func main() {
	dnsAddr := flag.String("dns", "", "DNS server address (host:port), required")
	from := flag.String("from", "", "envelope sender address, required")
	to := flag.String("to", "", "recipient address, required")
	smtpPort := flag.Int("smtp-port", 25, "MX SMTP port")
	httpsPort := flag.Int("https-port", 443, "policy server HTTPS port")
	daneOn := flag.Bool("dane", false, "enable DANE (TLSA) validation")
	tlsrptOut := flag.String("tlsrpt", "", "write an RFC 8460 report of this attempt to the file")
	timeout := flag.Duration("timeout", 15*time.Second, "per-step timeout")
	flag.Parse()

	if *dnsAddr == "" || *from == "" || *to == "" {
		fmt.Fprintln(os.Stderr, "usage: mtasts-send -dns <host:port> -from <addr> -to <addr> < message")
		flag.Usage()
		os.Exit(2)
	}
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reading message:", err)
		os.Exit(1)
	}

	dnsClient := resolver.New(*dnsAddr)
	outbound := &mta.Outbound{
		DNS: dnsClient,
		Validator: &mtasts.Validator{
			Resolver: scanner.TXTResolverAdapter{Client: dnsClient},
			Fetcher: &mtasts.Fetcher{
				Resolver: mtasts.AddrResolverFunc(func(ctx context.Context, host string) ([]string, error) {
					addrs, err := dnsClient.LookupAddrs(ctx, host, true)
					if err != nil {
						return nil, err
					}
					out := make([]string, len(addrs))
					for i, a := range addrs {
						out[i] = a.String()
					}
					return out, nil
				}),
				Port:    *httpsPort,
				Timeout: *timeout,
			},
			Cache: mtasts.NewPolicyCache(64),
		},
		HeloName:    "mtasts-send.invalid",
		SMTPPort:    *smtpPort,
		DANEEnabled: *daneOn,
		Timeout:     *timeout,
	}
	if *tlsrptOut != "" {
		now := time.Now()
		outbound.Report = tlsrpt.NewReport("mtasts-send", "mailto:postmaster@"+mustDomain(*from),
			now.Format("20060102T150405"), now, now.Add(time.Second))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4**timeout)
	defer cancel()
	out, err := outbound.Send(ctx, *from, []string{*to}, data)

	if *tlsrptOut != "" && outbound.Report != nil {
		if data, merr := outbound.Report.Marshal(); merr == nil {
			if werr := os.WriteFile(*tlsrptOut, data, 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "writing TLSRPT report:", werr)
			}
		}
	}

	if err != nil {
		fmt.Fprintln(os.Stderr, "delivery failed:", err)
		os.Exit(1)
	}
	fmt.Printf("delivered to %s via %s (TLS=%v, certificate verified=%v)\n",
		out.MXHost, out.Mechanism, out.TLS, out.CertVerified)
}

func mustDomain(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == '@' {
			return addr[i+1:]
		}
	}
	return addr
}
