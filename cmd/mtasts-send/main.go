// Command mtasts-send delivers a message as a compliant sending MTA:
// DANE-first transport security, MTA-STS enforcement with a durable TOFU
// policy cache, multi-MX failover, and an optional RFC 8460 TLSRPT
// report of the attempt. Message data is read from stdin.
//
// With -cache-dir the policy cache persists across invocations (and
// crashes): a warm domain is served from disk with zero policy fetches,
// and a policy whose refetch fails keeps enforcing until the stale
// window elapses. See docs/SENDER.md for the cache semantics and the
// refresh runbook.
//
// Usage:
//
//	echo "Subject: hi" | mtasts-send -dns 127.0.0.1:5353 \
//	    -from alice@sender.example -to bob@recipient.example \
//	    [-cache-dir /var/lib/mtasts/cache] [-refresh-interval 6h] \
//	    [-smtp-port 25] [-https-port 443] [-ca roots.pem] [-dane] \
//	    [-tlsrpt report.json]
package main

import (
	"context"
	"crypto/x509"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"time"

	"github.com/netsecurelab/mtasts/internal/mta"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/policycache"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/store"
	"github.com/netsecurelab/mtasts/internal/tlsrpt"
)

func main() { os.Exit(run()) }

func run() int {
	dnsAddr := flag.String("dns", "", "DNS server address (host:port), required")
	from := flag.String("from", "", "envelope sender address, required")
	to := flag.String("to", "", "recipient address, required")
	smtpPort := flag.Int("smtp-port", 25, "MX SMTP port")
	httpsPort := flag.Int("https-port", 443, "policy server HTTPS port")
	caFile := flag.String("ca", "", "PEM file with trusted roots (default: system roots)")
	daneOn := flag.Bool("dane", false, "enable DANE (TLSA) validation")
	tlsrptOut := flag.String("tlsrpt", "", "write an RFC 8460 report of this attempt to the file")
	timeout := flag.Duration("timeout", 15*time.Second, "per-step timeout")
	cacheDir := flag.String("cache-dir", "", "directory for the durable policy cache (default: in-memory, per-invocation)")
	cacheMax := flag.Int("cache-max", 4096, "maximum cached policy domains")
	refreshInterval := flag.Duration("refresh-interval", 0, "proactively revalidate cached policies expiring within 2x this interval before sending (0 disables)")
	staleWindow := flag.Duration("stale-window", 0, "how long an expired policy may keep serving after a failed refetch (default 24h)")
	flag.Parse()

	if *dnsAddr == "" || *from == "" || *to == "" {
		fmt.Fprintln(os.Stderr, "usage: mtasts-send -dns <host:port> -from <addr> -to <addr> < message")
		flag.Usage()
		return 2
	}
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reading message:", err)
		return 1
	}

	var roots *x509.CertPool
	if *caFile != "" {
		pem, err := os.ReadFile(*caFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reading CA file:", err)
			return 1
		}
		roots = x509.NewCertPool()
		if !roots.AppendCertsFromPEM(pem) {
			fmt.Fprintln(os.Stderr, "no certificates in", *caFile)
			return 1
		}
	}

	var backing store.Store
	if *cacheDir != "" {
		disk, err := store.OpenDisk(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opening policy cache:", err)
			return 1
		}
		backing = disk
	} else {
		backing = store.NewMem()
	}
	reg := obs.NewRegistry()
	cache, err := policycache.Open(backing, policycache.Options{
		Max: *cacheMax, StaleWindow: *staleWindow, Obs: reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loading policy cache:", err)
		if cerr := backing.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "closing store:", cerr)
		}
		return 1
	}
	defer func() {
		if err := cache.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "closing policy cache:", err)
		}
	}()

	dnsClient := resolver.New(*dnsAddr)
	outbound := &mta.Outbound{
		DNS: dnsClient,
		Validator: &mtasts.Validator{
			Resolver: scanner.TXTResolverAdapter{Client: dnsClient},
			Fetcher: &mtasts.Fetcher{
				Resolver: mtasts.AddrResolverFunc(func(ctx context.Context, host string) ([]string, error) {
					addrs, err := dnsClient.LookupAddrs(ctx, host, true)
					if err != nil {
						return nil, err
					}
					out := make([]string, len(addrs))
					for i, a := range addrs {
						out[i] = a.String()
					}
					return out, nil
				}),
				Port:    *httpsPort,
				RootCAs: roots,
				Timeout: *timeout,
			},
			Cache: cache,
		},
		Roots:       roots,
		HeloName:    "mtasts-send.invalid",
		SMTPPort:    *smtpPort,
		DANEEnabled: *daneOn,
		Timeout:     *timeout,
		Obs:         reg,
	}
	// Resolve MX hosts through -dns, like every other lookup this command
	// makes; an empty return falls back to OS resolution of the MX name.
	outbound.AddrOverride = func(mxHost string) string {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		addrs, err := dnsClient.LookupAddrs(ctx, mxHost, false)
		if err != nil || len(addrs) == 0 {
			return ""
		}
		return net.JoinHostPort(addrs[0].String(), strconv.Itoa(*smtpPort))
	}
	if *tlsrptOut != "" {
		now := time.Now()
		outbound.Report = tlsrpt.NewReport("mtasts-send", "mailto:postmaster@"+mustDomain(*from),
			now.Format("20060102T150405"), now, now.Add(time.Second))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4**timeout)
	defer cancel()

	// Proactive refresh (RFC 8461 §3.3): revalidate soon-to-expire cached
	// policies in place before sending. Long-running deployments run
	// Outbound.RunRefreshLoop instead; a one-shot CLI gets one pass.
	if *refreshInterval > 0 {
		refreshed := outbound.RefreshPolicies(ctx, 2**refreshInterval)
		failures := reg.Counter("mta.refresh.failures").Value()
		if refreshed > 0 || failures > 0 {
			fmt.Fprintf(os.Stderr, "policy refresh: revalidated=%d failures=%d\n", refreshed, failures)
		}
	}

	out, err := outbound.Send(ctx, *from, []string{*to}, data)

	if *tlsrptOut != "" && outbound.Report != nil {
		if data, merr := outbound.Report.Marshal(); merr == nil {
			if werr := os.WriteFile(*tlsrptOut, data, 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "writing TLSRPT report:", werr)
			}
		}
	}

	s := cache.Stats()
	fmt.Fprintf(os.Stderr, "policy cache: entries=%d hits=%d misses=%d stale_served=%d refresh_failures=%d collapsed=%d\n",
		s.Entries, s.Hits, s.Misses, s.StaleServed, s.RefreshFailures, s.Collapsed)

	if err != nil {
		fmt.Fprintln(os.Stderr, "delivery failed:", err)
		return 1
	}
	fmt.Printf("delivered to %s via %s (TLS=%v, certificate verified=%v)\n",
		out.MXHost, out.Mechanism, out.TLS, out.CertVerified)
	return 0
}

func mustDomain(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == '@' {
			return addr[i+1:]
		}
	}
	return addr
}
