// Command mtasts-campaign manages longitudinal scan campaigns: sharded,
// checkpointed weekly sweeps whose results persist in an append-only
// store and survive crashes (docs/CAMPAIGN.md). Weeks are scanned over
// the synthetic simnet world — the same deterministic ecosystem
// cmd/reproduce measures — so campaigns are reproducible end to end;
// live-socket campaigns compose the same engine with the mtasts-scan
// stack and are future work.
//
// Subcommands:
//
//	mtasts-campaign run    -dir store/ -id prod [-weeks 4] [-start-week 0]
//	                       [-shard-size 1024] [-workers 16] [-seed 1] [-scale 0.05]
//	                       [-stop-after-shards 0] [-metrics-addr host:port] [-events-out f]
//	mtasts-campaign resume -dir store/ -id prod [-weeks 4] ... (same flags as run)
//	mtasts-campaign status -dir store/ -id prod
//	mtasts-campaign diff   -dir store/ -id prod -old 0 -new 1 [-json]
//	mtasts-campaign export -dir store/ -id prod -week 0
//
// run scans weeks start-week..start-week+weeks-1, checkpointing every
// shard; resume is the same verb run over an existing store — shards
// whose checkpoint exists are skipped, so it continues exactly where a
// crash (or -stop-after-shards, which exits with code 3 and exists for
// crash drills) left off. status prints stored weeks, shard counts and
// store size. diff merge-joins two stored weeks; export writes one
// week's canonical snapshot (byte-identical across resumed and
// uninterrupted runs) to stdout.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/netsecurelab/mtasts/internal/campaign"
	"github.com/netsecurelab/mtasts/internal/experiments"
	"github.com/netsecurelab/mtasts/internal/scansvc"
	"github.com/netsecurelab/mtasts/internal/simnet"
	"github.com/netsecurelab/mtasts/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run", "resume":
		err = cmdRun(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, campaign.ErrStopped) {
			fmt.Fprintln(os.Stderr, "mtasts-campaign:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "mtasts-campaign:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mtasts-campaign <run|resume|status|diff|export> [flags]

  run/resume  scan campaign weeks over the simnet world (resume skips
              checkpointed shards; the two verbs are aliases)
  status      print stored weeks, shard counts and store size
  diff        merge-join two stored weeks and print the delta
  export      write one week's canonical snapshot (JSONL) to stdout

run 'mtasts-campaign <subcommand> -h' for the subcommand's flags; see
docs/CAMPAIGN.md for the store format and runbook.`)
}

// openStore opens the campaign's disk store.
func openStore(dir string) (*store.Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("-dir is required (the campaign store directory)")
	}
	return store.OpenDisk(dir)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign store directory (created if missing)")
	id := fs.String("id", "campaign", "campaign ID inside the store")
	weeksN := fs.Int("weeks", 1, "number of consecutive weeks to scan")
	startWeek := fs.Int("start-week", 0, "first week index to scan")
	shardSize := fs.Int("shard-size", campaign.DefaultShardSize, "domains per checkpointed shard")
	workers := fs.Int("workers", 16, "parallel scan workers per shard")
	seed := fs.Int64("seed", 1, "simnet world seed")
	scale := fs.Float64("scale", 0.05, "simnet population scale (1.0 = paper scale)")
	stopAfter := fs.Int("stop-after-shards", 0,
		"crash drill: stop with exit code 3 after scanning this many shards (0 = run to completion)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics on this host:port while running")
	eventsOut := fs.String("events-out", "", "append JSONL campaign events to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer s.Close()

	tel, err := scansvc.StartTelemetry(scansvc.TelemetryConfig{
		MetricsAddr: *metricsAddr, EventsPath: *eventsOut,
	})
	if err != nil {
		return err
	}
	defer tel.Close()
	if tel.Server != nil {
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", tel.Server.Addr())
	}

	world := simnet.Generate(simnet.Config{Seed: *seed, Scale: *scale})
	for w := *startWeek; w < *startWeek+*weeksN; w++ {
		src, scan := experiments.SnapshotSource(world, experiments.WeekSnapshot(w))
		runner, err := scansvc.RunnerSpec{Workers: *workers}.Build(scan, tel.Obs, tel.Events)
		if err != nil {
			return err
		}
		eng := &campaign.Engine{
			Store:           s,
			Runner:          runner,
			ID:              *id,
			ShardSize:       *shardSize,
			Obs:             tel.Obs,
			Events:          tel.Events,
			StopAfterShards: *stopAfter,
		}
		if err := eng.RunWeek(context.Background(), w, src); err != nil {
			return err
		}
		sum, err := campaign.Aggregate(s, *id, w)
		if err != nil {
			return err
		}
		fmt.Printf("week %d: %d domains, %d misconfigured, %d delivery failures\n",
			w, sum.Domains, sum.Misconfigured, sum.DeliveryFailure)
	}
	return nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign store directory")
	id := fs.String("id", "campaign", "campaign ID inside the store")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer s.Close()
	st, err := campaign.ReadStatus(s, *id)
	if err != nil {
		return err
	}
	fmt.Printf("campaign %s: %d weeks done %v, %d records, %d store bytes, %d segments\n",
		*id, len(st.Meta.WeeksDone), st.Meta.WeeksDone, st.Records, st.StoreBytes, s.Segments())
	weeks := make([]int, 0, len(st.Weeks))
	for w := range st.Weeks {
		weeks = append(weeks, w)
	}
	sort.Ints(weeks)
	for _, w := range weeks {
		done := "partial"
		for _, dw := range st.Meta.WeeksDone {
			if dw == w {
				done = "done"
			}
		}
		fmt.Printf("  week %d: %d shards checkpointed (%s)\n", w, st.Weeks[w], done)
	}
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign store directory")
	id := fs.String("id", "campaign", "campaign ID inside the store")
	oldW := fs.Int("old", 0, "earlier week index")
	newW := fs.Int("new", 1, "later week index")
	asJSON := fs.Bool("json", false, "emit the diff as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer s.Close()
	d, err := campaign.ComputeDiff(s, *id, *oldW, *newW, nil)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(d)
	}
	return d.WriteText(os.Stdout)
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign store directory")
	id := fs.String("id", "campaign", "campaign ID inside the store")
	week := fs.Int("week", 0, "week index to export")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer s.Close()
	return campaign.WriteSnapshot(os.Stdout, s, *id, *week)
}
