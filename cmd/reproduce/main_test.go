package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/netsecurelab/mtasts/internal/experiments"
	"github.com/netsecurelab/mtasts/internal/report"
	"github.com/netsecurelab/mtasts/internal/simnet"
)

func TestWriteExperiments(t *testing.T) {
	env := experiments.NewEnv(simnet.Config{Seed: 3, Scale: 0.01})
	rows := []report.ComparisonRow{
		{Metric: "m1", Paper: "10%", Measured: "11%", Holds: true},
		{Metric: "m2", Paper: "1", Measured: "99", Holds: false},
	}
	path := filepath.Join(t.TempDir(), "EXPERIMENTS.md")
	if err := writeExperiments(path, env, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"| m1 | 10% | 11% | yes |", "**NO**", "seed=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
