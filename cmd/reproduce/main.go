// Command reproduce regenerates every table and figure of the paper from
// the synthetic ecosystem and prints them, together with paper-vs-measured
// shape checks. With -write-experiments it also rewrites EXPERIMENTS.md.
//
// With -metrics-addr it serves live JSON metrics while the (potentially
// long, at -scale 1.0) run executes; with -events-out it appends one
// JSONL event per experiment. Either flag also prints an end-of-run
// metric summary to stderr.
//
// Usage:
//
//	reproduce [-scale 1.0] [-seed 1] [-experiment all|table1|figure2|...]
//	          [-write-experiments EXPERIMENTS.md]
//	          [-metrics-addr 127.0.0.1:9090] [-events-out runs.jsonl]
//
// The robustness experiment (-experiment robustness) is different: it
// scans a fleet of healthy loopback deployments through a seeded fault
// plan (-fault-* flags, see docs/ROBUSTNESS.md) and exits nonzero if any
// domain is misclassified with retries enabled or if two same-seed runs
// diverge, which makes it a CI smoke for transient-failure handling.
//
// The longitudinal experiment (-experiment longitudinal, with -weeks,
// -shard-size and -campaign-dir) runs the campaign engine over N
// consecutive weekly sweeps of the synthetic world and renders trend and
// churn tables from the stored snapshots (docs/CAMPAIGN.md).
//
// The sender enforcement matrix (-experiment sendertest, optionally
// restricted with -attack) mounts every registered adversary attack on
// loopback worlds and drives every sender behavior × policy mode through
// the live delivery stack (docs/ADVERSARY.md). It exits nonzero on any
// model mismatch, enforce-mode downgrade, unreported testing-mode
// violation, or same-seed divergence, which makes it the CI smoke for
// downgrade resistance.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/netsecurelab/mtasts/internal/dataset"
	"github.com/netsecurelab/mtasts/internal/experiments"
	"github.com/netsecurelab/mtasts/internal/faults"
	"github.com/netsecurelab/mtasts/internal/report"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/scansvc"
	"github.com/netsecurelab/mtasts/internal/simnet"
	"github.com/netsecurelab/mtasts/internal/store"
)

func main() {
	scale := flag.Float64("scale", experiments.DefaultScale,
		"population scale (1.0 = the paper's 68K MTA-STS domains)")
	seed := flag.Int64("seed", 1, "world seed")
	which := flag.String("experiment", "all",
		"experiment to run: all, table1, table2, figure2..figure12, records, errors, senders, survey, disclosure, robustness, longitudinal, sendertest")
	writeExp := flag.String("write-experiments", "", "write EXPERIMENTS.md-style shape report to this file")
	retries := flag.Int("retries", 4, "robustness: attempts per network operation")
	faultSeed := flag.Int64("fault-seed", 0, "robustness: fault plan seed (0 = use -seed)")
	faultDomains := flag.Int("fault-domains", 12, "robustness: healthy domains to provision")
	faultDNSLoss := flag.Float64("fault-dns-loss", 0.10, "robustness: DNS query drop rate")
	faultDNSServFail := flag.Float64("fault-dns-servfail", 0.05, "robustness: DNS SERVFAIL rate")
	faultDNSRefuse := flag.Float64("fault-dns-refuse", 0.03, "robustness: DNS REFUSED rate")
	faultDNSTruncate := flag.Float64("fault-dns-truncate", 0.05, "robustness: DNS truncation rate (UDP only)")
	faultConnReset := flag.Float64("fault-conn-reset", 0.08, "robustness: pre-greeting/mid-handshake reset rate")
	faultLatency := flag.Duration("fault-latency", 2*time.Millisecond, "robustness: injected latency")
	faultLatencyRate := flag.Float64("fault-latency-rate", 0.20, "robustness: injected latency rate")
	stageWorkersSpec := flag.String("stage-workers", "",
		"robustness: also verify the staged pipeline backend under faults, with these pool sizes (\"dns=4,fetch=2,probe=8\" or \"auto\")")
	dedup := flag.Bool("dedup", false, "robustness: enable singleflight dedup in the pipelined verification run (implies a pipelined run)")
	weeks := flag.Int("weeks", 6, "longitudinal: consecutive weekly sweeps to run")
	shardSize := flag.Int("shard-size", 256, "longitudinal: domains per campaign shard")
	campaignDir := flag.String("campaign-dir", "",
		"longitudinal: persist the campaign store in this directory (default: in-memory)")
	attack := flag.String("attack", "all",
		"sendertest: run only this attack from the adversary registry (\"all\" = every attack)")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics and /debug/scanprogress on this host:port while running")
	eventsOut := flag.String("events-out", "", "append JSONL experiment events to this file")
	flag.Parse()

	tel, err := scansvc.StartTelemetry(scansvc.TelemetryConfig{
		MetricsAddr: *metricsAddr, EventsPath: *eventsOut,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer tel.Close()
	reg, sink := tel.Obs, tel.Events
	if tel.Server != nil {
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", tel.Server.Addr())
	}

	// The robustness experiment runs against live loopback sockets, not
	// the synthetic world — handle it before paying for world generation.
	// It doubles as the CI fault-injection smoke: a misclassified domain
	// or a nondeterministic same-seed rerun is a nonzero exit.
	if strings.ToLower(*which) == "robustness" {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		cfg := experiments.RobustnessConfig{
			Domains:     *faultDomains,
			Seed:        fseed,
			MaxAttempts: *retries,
			Obs:         reg,
			Pipelined:   *stageWorkersSpec != "" || *dedup,
			Dedup:       *dedup,
			Plan: faults.Plan{
				Seed:        fseed,
				DNSLoss:     *faultDNSLoss,
				DNSServFail: *faultDNSServFail,
				DNSRefuse:   *faultDNSRefuse,
				DNSTruncate: *faultDNSTruncate,
				ConnReset:   *faultConnReset,
				Latency:     *faultLatency,
				LatencyRate: *faultLatencyRate,
			},
		}
		if cfg.Pipelined {
			sw, err := scanner.ParseStageWorkers(*stageWorkersSpec)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			cfg.StageWorkers = sw
		}
		start := time.Now()
		rep, err := experiments.RunRobustness(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.WriteTable(os.Stdout, rep.Table())
		sink.Emit("experiment.done", map[string]any{
			"experiment":    "robustness",
			"seed":          fseed,
			"duration_ms":   float64(time.Since(start).Microseconds()) / 1000,
			"deterministic": rep.Deterministic,
			"misclassified": len(rep.Misclassified()),
		})
		if reg != nil {
			fmt.Fprintln(os.Stderr)
			tel.WriteSummary(os.Stderr)
		}
		if !rep.Deterministic {
			fmt.Fprintln(os.Stderr, "FAIL: same-seed fault runs diverged")
			os.Exit(1)
		}
		if mis := rep.Misclassified(); len(mis) > 0 {
			fmt.Fprintf(os.Stderr, "FAIL: %d healthy domains misclassified with retries on:\n  %s\n",
				len(mis), strings.Join(mis, "\n  "))
			os.Exit(1)
		}
		fmt.Println("robustness: PASS (zero misclassifications, deterministic)")
		return
	}

	// The sender enforcement matrix also runs against live loopback
	// sockets — one adversarial world per attack — so it too skips world
	// generation. It is the CI smoke for downgrade resistance: any model
	// mismatch, enforce-mode downgrade, unreported testing-mode
	// violation, or same-seed divergence is a nonzero exit.
	if strings.ToLower(*which) == "sendertest" {
		cfg := experiments.AttackMatrixConfig{Seed: *seed}
		if a := strings.ToLower(*attack); a != "all" && a != "" {
			cfg.Attacks = []string{a}
		}
		start := time.Now()
		rep, err := experiments.RunAttackMatrix(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.WriteTable(os.Stdout, rep.Table())
		sink.Emit("experiment.done", map[string]any{
			"experiment":    "sendertest",
			"seed":          *seed,
			"duration_ms":   float64(time.Since(start).Microseconds()) / 1000,
			"deterministic": rep.Deterministic,
			"mismatches":    len(rep.Mismatches),
			"downgrades":    len(rep.Downgrades),
		})
		failed := false
		fail := func(header string, lines []string) {
			if len(lines) == 0 {
				return
			}
			failed = true
			fmt.Fprintf(os.Stderr, "FAIL: %s:\n  %s\n", header, strings.Join(lines, "\n  "))
		}
		fail("live cells disagree with the sender model", rep.Mismatches)
		fail("enforce-mode downgrades under attack", rep.Downgrades)
		fail("testing-mode delivery/reporting violations", rep.TestingHoldbacks)
		fail("canonical sender disagrees with the attack registry", rep.RegistryMismatches)
		if !rep.Deterministic {
			failed = true
			fmt.Fprintln(os.Stderr, "FAIL: same-seed attack-matrix runs diverged")
		}
		if failed {
			os.Exit(1)
		}
		fmt.Printf("sendertest: PASS (%d cells, zero downgrades, deterministic)\n", len(rep.Cells))
		return
	}

	genSpan := reg.StartSpan("reproduce.generate_world")
	env := experiments.NewEnv(simnet.Config{Seed: *seed, Scale: *scale})
	genSpan.End()
	out := os.Stdout

	chart := func(title, ylabel string, series ...dataset.Series) {
		c := report.Chart{Title: title, YLabel: ylabel, Height: 10, Series: series}
		c.Write(out)
	}

	expName := strings.ToLower(*which)
	expStart := time.Now()
	defer func() {
		took := time.Since(expStart)
		if reg != nil {
			reg.Histogram("reproduce.experiment.seconds", nil).ObserveDuration(took)
			reg.Counter("reproduce.experiments.total").Inc()
		}
		sink.Emit("experiment.done", map[string]any{
			"experiment":  expName,
			"scale":       *scale,
			"seed":        *seed,
			"duration_ms": float64(took.Microseconds()) / 1000,
		})
		if reg != nil {
			fmt.Fprintln(os.Stderr)
			tel.WriteSummary(os.Stderr)
		}
	}()

	switch expName {
	case "all":
		rows := env.RunAll(out)
		if *writeExp != "" {
			if err := writeExperiments(*writeExp, env, rows); err != nil {
				fmt.Fprintln(os.Stderr, "writing experiments report:", err)
				os.Exit(1)
			}
			fmt.Fprintln(out, "wrote", *writeExp)
		}
	case "table1":
		report.WriteTable(out, env.Table1())
	case "table2":
		report.WriteTable(out, env.Table2())
	case "figure2":
		chart("Figure 2: MTA-STS deployment", "% of domains", env.Figure2()...)
	case "figure3":
		chart("Figure 3: adoption vs Tranco rank", "% of domains", env.Figure3())
	case "figure4":
		chart("Figure 4: misconfigurations by category", "% of MTA-STS domains", env.Figure4()...)
	case "figure5":
		selfPanel, thirdPanel := env.Figure5()
		chart("Figure 5 (top): self-managed", "% of domains", selfPanel...)
		chart("Figure 5 (bottom): third-party", "% of domains", thirdPanel...)
	case "figure6":
		selfPanel, thirdPanel := env.Figure6()
		chart("Figure 6 (top): self-managed", "% of domains", selfPanel...)
		chart("Figure 6 (bottom): third-party", "% of domains", thirdPanel...)
	case "figure7":
		chart("Figure 7: invalid MX hosts", "% of MTA-STS domains", env.Figure7()...)
	case "figure8":
		chart("Figure 8: mx pattern mismatches", "% of MTA-STS domains", env.Figure8()...)
	case "figure9":
		chart("Figure 9: outdated policies", "% of mismatched domains", env.Figure9())
	case "figure10":
		chart("Figure 10: same vs different provider", "% of domains", env.Figure10()...)
	case "figure11":
		report.WriteTable(out, env.Figure11())
	case "figure12":
		top, bottom := env.Figure12()
		chart("Figure 12 (top): TLSRPT of MX domains", "%", top...)
		chart("Figure 12 (bottom): TLSRPT of MTA-STS domains", "%", bottom...)
	case "records":
		report.WriteTable(out, env.RecordErrorBreakdown())
	case "errors":
		report.WriteTable(out, env.ErrorTaxonomy())
	case "senders":
		report.WriteTable(out, env.SenderSide())
	case "survey":
		report.WriteTable(out, env.SurveyFindings())
		report.WriteTable(out, env.Figure11())
	case "disclosure":
		report.WriteTable(out, env.Disclosure())
	case "longitudinal":
		var st store.Store
		if *campaignDir != "" {
			disk, err := store.OpenDisk(*campaignDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer disk.Close()
			st = disk
		}
		rep, err := experiments.RunLongitudinal(context.Background(), experiments.LongitudinalConfig{
			World:     env.World,
			Weeks:     *weeks,
			Store:     st,
			ShardSize: *shardSize,
			Obs:       reg,
			Events:    sink,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.WriteTable(out, rep.TrendTable())
		report.WriteTable(out, rep.ChurnTable())
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		flag.Usage()
		os.Exit(2)
	}
}

func writeExperiments(path string, env *experiments.Env, rows []report.ComparisonRow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "# EXPERIMENTS — paper vs measured (generated by cmd/reproduce)")
	fmt.Fprintln(f)
	fmt.Fprintf(f, "World: seed=%d scale=%.2f (%d MTA-STS domains at the final snapshot).\n",
		env.World.Cfg.Seed, env.World.Cfg.Scale, env.World.AdoptedCount(simnet.Months-1, ""))
	fmt.Fprintln(f, "Regenerate with `go run ./cmd/reproduce -write-experiments EXPERIMENTS.md`.")
	fmt.Fprintln(f)

	fmt.Fprintln(f, "## Shape checks")
	fmt.Fprintln(f)
	fmt.Fprintln(f, "Absolute numbers are not expected to match (the substrate is a synthetic")
	fmt.Fprintln(f, "ecosystem, not the authors' vantage points); each check pins the paper's")
	fmt.Fprintln(f, "qualitative result — who wins, by what factor, which direction trends move.")
	fmt.Fprintln(f)
	fmt.Fprintln(f, "| metric | paper | measured | shape holds |")
	fmt.Fprintln(f, "|---|---|---|---|")
	for _, r := range rows {
		holds := "yes"
		if !r.Holds {
			holds = "**NO**"
		}
		fmt.Fprintf(f, "| %s | %s | %s | %s |\n", r.Metric, r.Paper, r.Measured, holds)
	}
	fmt.Fprintln(f)

	fmt.Fprintln(f, "## Key regenerated artifacts")
	fmt.Fprintln(f)
	fmt.Fprintln(f, report.MarkdownTable(env.Table1()))
	fmt.Fprintln(f, report.MarkdownTable(env.Table2()))
	fmt.Fprintln(f, report.MarkdownTable(env.RecordErrorBreakdown()))
	fmt.Fprintln(f, report.MarkdownTable(env.ErrorTaxonomy()))
	fmt.Fprintln(f, report.MarkdownTable(env.SenderSide()))
	fmt.Fprintln(f, report.MarkdownTable(env.Figure11()))
	fmt.Fprintln(f, report.MarkdownTable(env.SurveyFindings()))
	fmt.Fprintln(f, report.MarkdownTable(env.Disclosure()))

	fmt.Fprintln(f, "## Figure index")
	fmt.Fprintln(f)
	fmt.Fprintln(f, "Every figure renders as an ASCII chart via `go run ./cmd/reproduce"+
		" -experiment figureN`; one benchmark per table/figure lives in bench_test.go.")
	fmt.Fprintln(f, "See DESIGN.md §3 for the experiment-to-module index.")
	return nil
}
