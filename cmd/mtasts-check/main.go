// Command mtasts-check is a one-domain MTA-STS diagnostic: it runs the
// full scan pipeline against real infrastructure (record discovery, policy
// retrieval with the staged error taxonomy, MX STARTTLS certificate
// checks, and pattern consistency) and prints a human-readable verdict —
// the checker a domain administrator would run after deploying MTA-STS.
//
// Usage:
//
//	mtasts-check [-dns 127.0.0.1:5353] [-https-port 443] [-smtp-port 25] example.com
//
// Without -dns, the system resolver's configured server cannot be used by
// the wire-format client, so a DNS server address is required.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/scanner"
)

func main() {
	dnsAddr := flag.String("dns", "", "DNS server address (host:port), required")
	httpsPort := flag.Int("https-port", 443, "policy server HTTPS port")
	smtpPort := flag.Int("smtp-port", 25, "MX SMTP port")
	timeout := flag.Duration("timeout", 10*time.Second, "per-probe timeout")
	flag.Parse()

	if flag.NArg() != 1 || *dnsAddr == "" {
		fmt.Fprintln(os.Stderr, "usage: mtasts-check -dns <host:port> [flags] <domain>")
		flag.Usage()
		os.Exit(2)
	}
	domain := flag.Arg(0)

	live := &scanner.Live{
		DNS:       resolver.New(*dnsAddr),
		HTTPSPort: *httpsPort,
		SMTPPort:  *smtpPort,
		HeloName:  "mtasts-check.invalid",
		Timeout:   *timeout,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4**timeout)
	defer cancel()
	r := live.ScanDomain(ctx, domain)

	fmt.Printf("MTA-STS diagnostic for %s\n\n", domain)
	if !r.RecordPresent {
		fmt.Println("  record:  not found — MTA-STS is not deployed")
		os.Exit(0)
	}
	if r.RecordValid {
		fmt.Printf("  record:  OK (id=%s)\n", r.Record.ID)
	} else {
		fmt.Printf("  record:  INVALID — %v\n", r.RecordErr)
	}
	if r.PolicyCNAME != "" {
		fmt.Printf("  delegation: mta-sts.%s -> %s\n", domain, r.PolicyCNAME)
	}
	if r.PolicyOK {
		fmt.Printf("  policy:  OK (mode=%s, max_age=%d, %d mx pattern(s))\n",
			r.Policy.Mode, r.Policy.MaxAge, len(r.Policy.MXPatterns))
	} else {
		fmt.Printf("  policy:  FAILED at %s stage", r.PolicyStage)
		if r.PolicyCertProblem.String() != "ok" {
			fmt.Printf(" (certificate: %s)", r.PolicyCertProblem)
		}
		if r.PolicyHTTPStatus != 0 {
			fmt.Printf(" (HTTP %d)", r.PolicyHTTPStatus)
		}
		fmt.Println()
	}
	if len(r.MXHosts) == 0 {
		fmt.Println("  mx:      no MX records")
	}
	for _, mx := range r.MXHosts {
		if p, ok := r.MXProblems[mx]; ok {
			verdict := "OK"
			if !p.Valid() {
				verdict = "INVALID (" + p.String() + ")"
			}
			fmt.Printf("  mx:      %s — certificate %s\n", mx, verdict)
		} else {
			fmt.Printf("  mx:      %s — no STARTTLS\n", mx)
		}
	}
	if r.PolicyOK {
		if r.Mismatch.Kind == inconsistency.KindNone {
			fmt.Println("  match:   MX records match the policy's mx patterns")
		} else {
			fmt.Printf("  match:   MISMATCH (%s): patterns %v vs MX %v\n",
				r.Mismatch.Kind, r.Mismatch.Patterns, r.Mismatch.MXHosts)
		}
	}

	fmt.Println()
	if r.Misconfigured() {
		fmt.Printf("verdict: MISCONFIGURED — categories: %v\n", r.Categories())
		for _, e := range r.TaxErrors() {
			if msg := e.Error(); msg != string(e.Code) {
				fmt.Printf("  %-18s %s\n", e.Code, msg)
			} else {
				fmt.Printf("  %s\n", e.Code)
			}
		}
		if r.DeliveryFailure() {
			fmt.Println("WARNING: compliant senders will REFUSE to deliver mail to this domain")
		}
		os.Exit(1)
	}
	fmt.Println("verdict: OK")
}
