package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadDomains(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "domains.txt")
	content := "example.com\n# comment\n\n  spaced.org  \nlast.net"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readDomains(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"example.com", "spaced.org", "last.net"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("domain %d = %q, want %q", i, got[i], want[i])
		}
	}
	if _, err := readDomains(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
}
