// Command mtasts-scan runs the paper's measurement pipeline over a list of
// domains (one per line on stdin or from -domains), using the live scanner
// against real sockets, and prints a per-domain TSV plus the aggregate
// summary — the §4.2 snapshot for an arbitrary population.
//
// Usage:
//
//	mtasts-scan -dns 127.0.0.1:5353 [-workers 16] [-rate 100] < domains.txt
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/netsecurelab/mtasts/internal/dataset"
	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/report"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/scanner"
)

func main() {
	dnsAddr := flag.String("dns", "", "DNS server address (host:port), required")
	domainsFile := flag.String("domains", "-", "domain list file ('-' for stdin)")
	workers := flag.Int("workers", 16, "concurrent scan workers")
	rate := flag.Float64("rate", 100, "DNS queries per second (0 = unlimited)")
	httpsPort := flag.Int("https-port", 443, "policy server HTTPS port")
	smtpPort := flag.Int("smtp-port", 25, "MX SMTP port")
	timeout := flag.Duration("timeout", 10*time.Second, "per-probe timeout")
	flag.Parse()

	if *dnsAddr == "" {
		fmt.Fprintln(os.Stderr, "usage: mtasts-scan -dns <host:port> [flags] < domains.txt")
		flag.Usage()
		os.Exit(2)
	}

	domains, err := readDomains(*domainsFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reading domains:", err)
		os.Exit(1)
	}

	dns := resolver.New(*dnsAddr)
	if *rate > 0 {
		dns.Limiter = resolver.NewRateLimiter(*rate, 10)
	}
	live := &scanner.Live{
		DNS:       dns,
		HTTPSPort: *httpsPort,
		SMTPPort:  *smtpPort,
		HeloName:  "mtasts-scan.invalid",
		Timeout:   *timeout,
	}
	runner := &scanner.Runner{Workers: *workers, Scan: live}
	results := runner.Run(context.Background(), domains)

	tbl := &dataset.Table{Headers: []string{
		"domain", "record", "policy", "policy_stage", "mode", "mx_invalid", "mismatch", "delivery_failure",
	}}
	for i := range results {
		r := &results[i]
		if !r.RecordPresent {
			continue
		}
		record := "ok"
		if !r.RecordValid {
			record = "invalid"
		}
		policy, stage := "ok", ""
		if !r.PolicyOK {
			policy, stage = "failed", r.PolicyStage.String()
		}
		invalid := 0
		for _, p := range r.MXProblems {
			if !p.Valid() {
				invalid++
			}
		}
		mismatch := ""
		if r.Mismatch.Kind != inconsistency.KindNone {
			mismatch = r.Mismatch.Kind.String()
		}
		tbl.AddRow(r.Domain, record, policy, stage, string(r.Policy.Mode),
			invalid, mismatch, r.DeliveryFailure())
	}
	tbl.WriteTSV(os.Stdout)

	s := scanner.Summarize(results)
	fmt.Fprintln(os.Stderr)
	sum := &dataset.Table{Title: "Scan summary", Headers: []string{"metric", "count"}}
	sum.AddRow("domains scanned", s.Total)
	sum.AddRow("with MTA-STS record", s.WithRecord)
	sum.AddRow("misconfigured", s.Misconfigured)
	for cat, n := range s.ByCategory {
		sum.AddRow("  "+cat.String(), n)
	}
	sum.AddRow("delivery failures", s.DeliveryFailures)
	report.WriteTable(os.Stderr, sum)
}

func readDomains(path string) ([]string, error) {
	var r *bufio.Scanner
	if path == "-" {
		r = bufio.NewScanner(os.Stdin)
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = bufio.NewScanner(f)
	}
	var out []string
	for r.Scan() {
		d := strings.TrimSpace(r.Text())
		if d != "" && !strings.HasPrefix(d, "#") {
			out = append(out, d)
		}
	}
	return out, r.Err()
}
