// Command mtasts-scan runs the paper's measurement pipeline over a list of
// domains (one per line on stdin or from -domains), using the live scanner
// against real sockets, and prints a per-domain TSV plus the aggregate
// summary — the §4.2 snapshot for an arbitrary population.
//
// With -metrics-addr it serves live JSON metrics (/metrics) and scan
// progress (/debug/scanprogress) while the scan runs; with -events-out it
// appends one JSONL event per scanned domain for post-hoc analysis. Both
// default off, in which case the scan pays no observability cost beyond
// nil checks. An end-of-run metric summary is printed to stderr whenever
// either flag is set.
//
// Usage:
//
//	mtasts-scan -dns 127.0.0.1:5353 [-workers 16] [-rate 100] [-ca ca.pem]
//	            [-retries 3] [-retry-base 100ms] [-retry-budget 10000]
//	            [-metrics-addr 127.0.0.1:9090] [-events-out scan.jsonl] < domains.txt
//
// With -retries above 1, transient failures (DNS timeouts and SERVFAILs,
// torn connections, HTTP 5xx) are retried with exponential backoff before
// a verdict is recorded — the paper's re-scan methodology, see
// docs/ROBUSTNESS.md. Persistent verdicts (NXDOMAIN, certificate
// validation failures, policy syntax errors) are never retried.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/netsecurelab/mtasts/internal/dataset"
	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/report"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/scansvc"
)

func main() {
	dnsAddr := flag.String("dns", "", "DNS server address (host:port), required")
	domainsFile := flag.String("domains", "-", "domain list file ('-' for stdin)")
	workers := flag.Int("workers", 16, "concurrent scan workers")
	stageWorkersSpec := flag.String("stage-workers", "",
		"run the staged pipeline instead of the flat pool, with per-stage pool sizes (\"dns=16,fetch=8,probe=32\"; \"auto\" sizes every stage from -workers)")
	dedup := flag.Bool("dedup", false,
		"collapse duplicate in-flight policy fetches and MX probes and share results across domains (implies the staged pipeline)")
	rate := flag.Float64("rate", 100, "DNS queries per second (0 = unlimited)")
	httpsPort := flag.Int("https-port", 443, "policy server HTTPS port")
	smtpPort := flag.Int("smtp-port", 25, "MX SMTP port")
	timeout := flag.Duration("timeout", 10*time.Second, "per-probe timeout")
	retries := flag.Int("retries", 1, "attempts per network operation (1 = no retries)")
	retryBase := flag.Duration("retry-base", 100*time.Millisecond, "first retry backoff delay")
	retryBudget := flag.Int64("retry-budget", 0, "total retries allowed across the run (0 = unlimited)")
	caFile := flag.String("ca", "", "PEM file with extra trusted roots (e.g. mtasts-host -ca-out)")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics and /debug/scanprogress on this host:port while scanning")
	eventsOut := flag.String("events-out", "", "append JSONL scan events to this file")
	flag.Parse()

	if *dnsAddr == "" {
		fmt.Fprintln(os.Stderr, "usage: mtasts-scan -dns <host:port> [flags] < domains.txt")
		flag.Usage()
		os.Exit(2)
	}

	domains, err := readDomains(*domainsFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reading domains:", err)
		os.Exit(1)
	}

	// Observability is on whenever either flag asks for it; otherwise the
	// registry stays nil and the pipeline pays only nil checks
	// (scansvc.StartTelemetry, shared with reproduce and mtasts-serve).
	tel, err := scansvc.StartTelemetry(scansvc.TelemetryConfig{
		MetricsAddr: *metricsAddr, EventsPath: *eventsOut,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer tel.Close()
	if tel.Server != nil {
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics  progress: http://%s/debug/scanprogress\n",
			tel.Server.Addr(), tel.Server.Addr())
	}

	live, err := scansvc.LiveSpec{
		DNSAddr:     *dnsAddr,
		Rate:        *rate,
		HTTPSPort:   *httpsPort,
		SMTPPort:    *smtpPort,
		Timeout:     *timeout,
		Retries:     *retries,
		RetryBase:   *retryBase,
		RetryBudget: *retryBudget,
		CAFile:      *caFile,
	}.Build(tel.Obs, tel.Events)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	runner, err := scansvc.RunnerSpec{
		Workers: *workers, StageWorkers: *stageWorkersSpec, Dedup: *dedup,
	}.Build(live, tel.Obs, tel.Events)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	results := runner.Run(context.Background(), domains)

	tbl := &dataset.Table{Headers: []string{
		"domain", "record", "policy", "policy_stage", "mode", "mx_invalid", "mismatch", "delivery_failure",
	}}
	for i := range results {
		r := &results[i]
		if !r.RecordPresent {
			continue
		}
		record := "ok"
		if !r.RecordValid {
			record = "invalid"
		}
		policy, stage := "ok", ""
		if !r.PolicyOK {
			policy, stage = "failed", r.PolicyStage.String()
		}
		invalid := 0
		for _, p := range r.MXProblems {
			if !p.Valid() {
				invalid++
			}
		}
		mismatch := ""
		if r.Mismatch.Kind != inconsistency.KindNone {
			mismatch = r.Mismatch.Kind.String()
		}
		tbl.AddRow(r.Domain, record, policy, stage, string(r.Policy.Mode),
			invalid, mismatch, r.DeliveryFailure())
	}
	if err := tbl.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "writing results:", err)
		os.Exit(1)
	}

	s := scanner.Summarize(results)
	fmt.Fprintln(os.Stderr)
	sum := &dataset.Table{Title: "Scan summary", Headers: []string{"metric", "count"}}
	sum.AddRow("domains scanned", s.Total)
	if s.Canceled > 0 {
		sum.AddRow("canceled (no verdict)", s.Canceled)
	}
	sum.AddRow("with MTA-STS record", s.WithRecord)
	sum.AddRow("misconfigured", s.Misconfigured)
	for cat, n := range s.ByCategory {
		sum.AddRow("  "+cat.String(), n)
	}
	sum.AddRow("delivery failures", s.DeliveryFailures)
	if *retries > 1 {
		var rets, rec, gave int64
		for i := range results {
			rets += results[i].Retries
			rec += results[i].RetryRecovered
			gave += results[i].RetryGaveUp
		}
		sum.AddRow("retries", rets)
		sum.AddRow("retry recovered", rec)
		sum.AddRow("retry gave up", gave)
		if live.RetryBudget != nil {
			sum.AddRow("retry budget left", live.RetryBudget.Remaining())
		}
	}
	report.WriteTable(os.Stderr, sum)

	if len(s.ByCode) > 0 {
		fmt.Fprintln(os.Stderr)
		report.WriteTable(os.Stderr, report.ErrorTaxonomyTable(
			"Error taxonomy (domains per code, docs/ERRORS.md)", s.ByCode))
	}

	if tel.Obs != nil {
		fmt.Fprintln(os.Stderr)
		tel.WriteSummary(os.Stderr)
	}
}

func readDomains(path string) ([]string, error) {
	var r *bufio.Scanner
	if path == "-" {
		r = bufio.NewScanner(os.Stdin)
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = bufio.NewScanner(f)
	}
	var out []string
	for r.Scan() {
		d := strings.TrimSpace(r.Text())
		if d != "" && !strings.HasPrefix(d, "#") {
			out = append(out, d)
		}
	}
	return out, r.Err()
}
