// Command mtastslint runs the project's static-analysis suite
// (internal/lint) over the module: errdrop, ctxpass, obsnames,
// deadvalue, sleeploop, codes, pkgdoc, and the concurrency pack
// (lockhold, unlockpath, goroleak, wgpair), with //lint:ignore
// suppressions and a committed baseline for grandfathered sites. It
// exits 0 when the tree is clean, 1 on new findings, 2 on operational
// errors.
//
// Usage:
//
//	mtastslint [-dir .] [-json] [-baseline file] [-write-baseline]
//	           [-only errdrop,obsnames] [-list]
//
// docs/LINT.md documents each analyzer and the baseline workflow.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/netsecurelab/mtasts/internal/lint"
)

func main() {
	var (
		dir           = flag.String("dir", ".", "module root to analyze (directory containing go.mod)")
		jsonOut       = flag.Bool("json", false, "report findings as JSON instead of file:line:col text")
		baseline      = flag.String("baseline", "", "baseline file (default <dir>/"+lint.DefaultBaselineName+")")
		writeBaseline = flag.Bool("write-baseline", false, "regenerate the baseline from current findings and exit 0")
		only          = flag.String("only", "", "comma-separated analyzer names to run (default all)")
		list          = flag.Bool("list", false, "list analyzers and exit")
		docs          = flag.String("docs", "", "observability doc for obsnames (default <dir>/docs/OBSERVABILITY.md)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All(*docs) {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	opts := lint.Options{
		Dir:           *dir,
		BaselinePath:  *baseline,
		DocsPath:      *docs,
		JSON:          *jsonOut,
		WriteBaseline: *writeBaseline,
	}
	if *only != "" {
		opts.Only = strings.Split(*only, ",")
	}
	os.Exit(lint.Main(opts, os.Stdout, os.Stderr))
}
