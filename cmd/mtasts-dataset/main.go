// Command mtasts-dataset materializes the synthetic ecosystem as release
// files — the analog of the dataset the paper publishes at
// mta-sts.netsecurelab.org: per-snapshot TSVs of DNS observations and scan
// results, the policy bodies, and a DNS zone file that the substrate
// servers (or external tooling) can load.
//
// Usage:
//
//	mtasts-dataset -out ./dataset [-scale 0.05] [-seed 1] [-snapshots 26,36]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/netsecurelab/mtasts/internal/dataset"
	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnszone"
	"github.com/netsecurelab/mtasts/internal/inconsistency"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/simnet"
)

func main() {
	out := flag.String("out", "dataset", "output directory")
	scale := flag.Float64("scale", 0.05, "population scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 1, "world seed")
	snaps := flag.String("snapshots", "", "comma-separated snapshot indexes (default: all component scans)")
	flag.Parse()

	world := simnet.Generate(simnet.Config{Seed: *seed, Scale: *scale})

	var indexes []int
	if *snaps == "" {
		for t := simnet.ComponentScanFirstIndex; t < simnet.Months; t++ {
			indexes = append(indexes, t)
		}
	} else {
		for _, part := range strings.Split(*snaps, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 0 || n >= simnet.Months {
				fmt.Fprintf(os.Stderr, "bad snapshot index %q\n", part)
				os.Exit(2)
			}
			indexes = append(indexes, n)
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for _, t := range indexes {
		if err := writeSnapshot(world, t, *out); err != nil {
			fmt.Fprintf(os.Stderr, "snapshot %d: %v\n", t, err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %d snapshot(s) for %d domains to %s\n", len(indexes), len(world.Domains), *out)
}

func writeSnapshot(world *simnet.World, t int, outDir string) error {
	label := simnet.SnapshotTime(t).Format("2006-01")
	dir := filepath.Join(outDir, label)
	if err := os.MkdirAll(filepath.Join(dir, "policies"), 0o755); err != nil {
		return err
	}

	// 1. DNS observations TSV + zone file.
	dnsTbl := &dataset.Table{Headers: []string{
		"domain", "tld", "mta_sts_txt", "mx_hosts", "policy_cname", "tlsrpt",
	}}
	zone := dnszone.New("test-dataset")
	results := make([]scanner.DomainResult, 0, len(world.Domains))
	now := simnet.SnapshotTime(t)
	for _, d := range world.Domains {
		a, ok := world.ArtifactsAt(d, t)
		if !ok {
			continue
		}
		dnsTbl.AddRow(d.Name, d.TLD, strings.Join(a.TXT, " | "),
			strings.Join(a.MXHosts, ","), a.PolicyCNAME,
			fmt.Sprintf("%v", world.TLSRPTAt(d, t)))

		// Zone entries (under a shared synthetic origin so one file loads
		// into the substrate DNS server).
		owner := d.Name + ".test-dataset"
		for _, txt := range a.TXT {
			zone.MustAdd(dnsmsg.RR{Name: "_mta-sts." + owner, Type: dnsmsg.TypeTXT,
				Class: dnsmsg.ClassIN, TTL: 300, Data: dnsmsg.NewTXT(txt)})
		}
		for i, mx := range a.MXHosts {
			zone.MustAdd(dnsmsg.RR{Name: owner, Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN,
				TTL: 300, Data: dnsmsg.MXData{Preference: uint16(10 * (i + 1)), Host: mx + ".test-dataset"}})
		}

		// Policy body on disk.
		if len(a.PolicyBody) > 0 {
			path := filepath.Join(dir, "policies", d.Name+".txt")
			if err := os.WriteFile(path, a.PolicyBody, 0o644); err != nil {
				return err
			}
		}
		results = append(results, scanner.ScanArtifacts(a, now))
	}
	if err := writeTable(filepath.Join(dir, "dns.tsv"), dnsTbl); err != nil {
		return err
	}
	zf, err := os.Create(filepath.Join(dir, "zone.txt"))
	if err != nil {
		return err
	}
	if _, err := zone.WriteTo(zf); err != nil {
		return errors.Join(err, zf.Close())
	}
	if err := zf.Close(); err != nil {
		return err
	}

	// 2. Scan results TSV.
	scanTbl := &dataset.Table{Headers: []string{
		"domain", "record_valid", "policy_ok", "policy_stage", "cert_problem",
		"mode", "mx_invalid", "mismatch", "delivery_failure",
	}}
	for i := range results {
		r := &results[i]
		invalid := 0
		for _, p := range r.MXProblems {
			if !p.Valid() {
				invalid++
			}
		}
		mismatch := ""
		if r.Mismatch.Kind != inconsistency.KindNone {
			mismatch = r.Mismatch.Kind.String()
		}
		scanTbl.AddRow(r.Domain, r.RecordValid, r.PolicyOK, r.PolicyStage.String(),
			r.PolicyCertProblem.String(), string(r.Policy.Mode), invalid, mismatch,
			r.DeliveryFailure())
	}
	if err := writeTable(filepath.Join(dir, "scan.tsv"), scanTbl); err != nil {
		return err
	}

	// 3. Snapshot summary.
	s := scanner.Summarize(results)
	sumTbl := &dataset.Table{Headers: []string{"metric", "value"}}
	sumTbl.AddRow("snapshot", label)
	sumTbl.AddRow("domains_with_record", s.WithRecord)
	sumTbl.AddRow("misconfigured", s.Misconfigured)
	sumTbl.AddRow("delivery_failures", s.DeliveryFailures)
	for cat, n := range s.ByCategory {
		sumTbl.AddRow("category_"+strings.ReplaceAll(cat.String(), " ", "_"), n)
	}
	return writeTable(filepath.Join(dir, "summary.tsv"), sumTbl)
}

func writeTable(path string, t *dataset.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteTSV(f)
}
