// Command mtasts-serve runs the scanner as a long-lived service: a
// durable job queue over an on-disk store, an HTTP API to submit, list,
// cancel and stream scan jobs, an RFC 8460 TLSRPT ingestion endpoint
// whose reports join scan results per domain, and the observability
// endpoints (/metrics with JSON or Prometheus output, negotiated per
// request) on the same listener (docs/SERVICE.md).
//
// Jobs persist before they are acknowledged and resume from their shard
// checkpoints after a crash or restart, completing with results
// byte-identical to an uninterrupted run — the same guarantee
// mtasts-campaign makes for weekly sweeps, inherited from the same
// engine.
//
// By default jobs scan the deterministic simnet world (-seed/-scale),
// which makes a self-contained service for drills and CI; with -dns the
// service scans live sockets through the same resolver/retry stack as
// mtasts-scan.
//
// Usage:
//
//	mtasts-serve -store-dir jobs/ [-addr 127.0.0.1:8080]
//	             [-seed 1] [-scale 0.05] | [-dns 127.0.0.1:5353 [-rate 100]
//	             [-ca ca.pem] [-retries 3] [-retry-base 100ms] [-retry-budget 10000]]
//	             [-workers 16] [-stage-workers auto] [-dedup]
//	             [-shard-size 1024] [-max-jobs 2] [-max-queue 1024]
//	             [-tenant-rate 0] [-tenant-burst 0] [-events-out svc.jsonl]
//	             [-drill-stop-after-shards 0]
//
// The service shuts down gracefully on SIGINT/SIGTERM: in-flight jobs
// checkpoint at the next shard boundary and resume on the next start.
// -drill-stop-after-shards arms the crash drill: the first job stops
// mid-run and the process exits with code 3, leaving the store exactly
// as a crash would (make smoke-serve).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/netsecurelab/mtasts/internal/campaign"
	"github.com/netsecurelab/mtasts/internal/experiments"
	"github.com/netsecurelab/mtasts/internal/obs"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/scansvc"
	"github.com/netsecurelab/mtasts/internal/simnet"
	"github.com/netsecurelab/mtasts/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mtasts-serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address for the API and /metrics")
	storeDir := fs.String("store-dir", "", "durable job store directory (created if missing), required")
	seed := fs.Int64("seed", 1, "simnet world seed (ignored with -dns)")
	scale := fs.Float64("scale", 0.05, "simnet population scale (ignored with -dns)")
	dnsAddr := fs.String("dns", "", "scan live sockets through this DNS server (host:port) instead of the simnet world")
	rate := fs.Float64("rate", 100, "live: DNS queries per second (0 = unlimited)")
	httpsPort := fs.Int("https-port", 443, "live: policy server HTTPS port")
	smtpPort := fs.Int("smtp-port", 25, "live: MX SMTP port")
	timeout := fs.Duration("timeout", 10*time.Second, "live: per-probe timeout")
	retries := fs.Int("retries", 1, "live: attempts per network operation (1 = no retries)")
	retryBase := fs.Duration("retry-base", 100*time.Millisecond, "live: first retry backoff delay")
	retryBudget := fs.Int64("retry-budget", 0, "live: total retries allowed across each job (0 = unlimited)")
	caFile := fs.String("ca", "", "live: PEM file with extra trusted roots (e.g. mtasts-host -ca-out)")
	workers := fs.Int("workers", 16, "concurrent scan workers per job")
	stageWorkersSpec := fs.String("stage-workers", "",
		"run the staged pipeline instead of the flat pool, with per-stage pool sizes (\"dns=16,fetch=8,probe=32\"; \"auto\" sizes every stage from -workers)")
	dedup := fs.Bool("dedup", false,
		"collapse duplicate in-flight policy fetches and MX probes (implies the staged pipeline)")
	shardSize := fs.Int("shard-size", campaign.DefaultShardSize, "domains per checkpointed shard")
	maxJobs := fs.Int("max-jobs", 2, "jobs scanning concurrently")
	maxQueue := fs.Int("max-queue", 1024, "dispatch queue capacity (submissions beyond it get 503)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant admission rate, domains per second (0 = unlimited)")
	tenantBurst := fs.Float64("tenant-burst", 0, "per-tenant admission burst, domains (defaults to -tenant-rate)")
	eventsOut := fs.String("events-out", "", "append JSONL service events to this file")
	drill := fs.Int("drill-stop-after-shards", 0,
		"crash drill: stop the first job after this many shards and exit with code 3 (0 = off)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "usage: mtasts-serve -store-dir <dir> [flags]")
		fs.Usage()
		return 2
	}

	st, err := store.OpenDisk(*storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtasts-serve:", err)
		return 1
	}
	defer st.Close()

	// The service always has a registry — /metrics is part of the API
	// surface — so telemetry only needs the optional events file.
	tel, err := scansvc.StartTelemetry(scansvc.TelemetryConfig{EventsPath: *eventsOut})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtasts-serve:", err)
		return 1
	}
	defer tel.Close()
	if tel.Obs == nil {
		tel.Obs = obs.NewRegistry()
	}

	var scan scanner.Scanner
	if *dnsAddr != "" {
		live, err := scansvc.LiveSpec{
			DNSAddr:     *dnsAddr,
			Rate:        *rate,
			HTTPSPort:   *httpsPort,
			SMTPPort:    *smtpPort,
			Timeout:     *timeout,
			Retries:     *retries,
			RetryBase:   *retryBase,
			RetryBudget: *retryBudget,
			CAFile:      *caFile,
		}.Build(tel.Obs, tel.Events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtasts-serve:", err)
			return 1
		}
		scan = live
	} else {
		world := simnet.Generate(simnet.Config{Seed: *seed, Scale: *scale})
		_, scan = experiments.SnapshotSource(world, experiments.WeekSnapshot(0))
	}

	svc := &scansvc.Service{
		Store:           st,
		Scan:            scan,
		Runner:          scansvc.RunnerSpec{Workers: *workers, StageWorkers: *stageWorkersSpec, Dedup: *dedup},
		Obs:             tel.Obs,
		Events:          tel.Events,
		MaxConcurrent:   *maxJobs,
		MaxQueue:        *maxQueue,
		ShardSize:       *shardSize,
		StopAfterShards: *drill,
	}
	if *tenantRate > 0 {
		burst := *tenantBurst
		if burst <= 0 {
			burst = *tenantRate
		}
		svc.Tenants = scansvc.NewTenantLimiter(*tenantRate, burst)
	}
	if err := svc.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "mtasts-serve:", err)
		return 1
	}
	defer svc.Close()

	// One listener serves both surfaces: the job/TLSRPT API and the
	// observability endpoints (/metrics, /debug/scanprogress,
	// /debug/vars).
	mux := tel.Obs.NewServeMux()
	mux.Handle("/api/v1/", svc.Handler())
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtasts-serve:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	// The listening line is the readiness signal scripts (and the smoke
	// test) key on; with -addr :0 it is also where the port appears.
	fmt.Fprintf(os.Stderr, "mtasts-serve: listening on %s\n", ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)

	exit := 0
	select {
	case err := <-svc.Fatal():
		// The crash drill fired: exit 3 with the job's stored state still
		// running, exactly what a crash leaves behind.
		fmt.Fprintln(os.Stderr, "mtasts-serve:", err)
		exit = 3
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "mtasts-serve: %v, shutting down\n", sig)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "mtasts-serve:", err)
		exit = 1
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "mtasts-serve:", err)
	}
	if err := svc.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mtasts-serve:", err)
	}
	tel.WriteSummary(os.Stderr)
	return exit
}
