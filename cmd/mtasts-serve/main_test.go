package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/experiments"
	"github.com/netsecurelab/mtasts/internal/simnet"
	"github.com/netsecurelab/mtasts/internal/tlsrpt"
)

// serveSmoke gates the service crash-restart smoke: it builds the real
// binary and drives it over HTTP through a kill-and-restart drill. Run
// via make smoke-serve.
var serveSmoke = flag.Bool("servesmoke", false, "run the mtasts-serve crash-restart smoke (builds the binary)")

// The smoke pins the world so the test process can compute the same
// domain population the service scans.
const (
	smokeSeed  = 11
	smokeScale = "0.02"
)

var listenRe = regexp.MustCompile(`mtasts-serve: listening on (\S+)`)

// serveProc is one running service process.
type serveProc struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	stderr *bytes.Buffer
	exited chan error
}

// startServe launches the binary on an ephemeral port and waits for the
// listening line on stderr.
func startServe(t *testing.T, bin string, extra ...string) *serveProc {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, stderr: &bytes.Buffer{}, exited: make(chan error, 1)}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			p.stderr.WriteString(line + "\n")
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
		p.exited <- cmd.Wait()
	}()
	select {
	case addr := <-addrCh:
		p.base = "http://" + addr
	case err := <-p.exited:
		t.Fatalf("mtasts-serve exited before listening: %v\n%s", err, p.stderr.String())
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("mtasts-serve never printed the listening line\n%s", p.stderr.String())
	}
	return p
}

// wait blocks for process exit and returns its exit code.
func (p *serveProc) wait(t *testing.T) int {
	t.Helper()
	select {
	case err := <-p.exited:
		if err == nil {
			return 0
		}
		var ee *exec.ExitError
		if ok := errorsAs(err, &ee); ok {
			return ee.ExitCode()
		}
		t.Fatalf("wait: %v\n%s", err, p.stderr.String())
	case <-time.After(60 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("mtasts-serve did not exit\n%s", p.stderr.String())
	}
	return -1
}

// errorsAs avoids importing errors just for one assertion.
func errorsAs(err error, target **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*target = ee
	}
	return ok
}

// api drives one HTTP call against the service, failing the test on
// transport errors and unexpected statuses.
func api(t *testing.T, method, url, body string, wantStatus int) []byte {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s = %d, want %d: %s", method, url, resp.StatusCode, wantStatus, data)
	}
	return data
}

// waitJobDone polls the job endpoint until the job reports done.
func waitJobDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var j struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(api(t, "GET", base+"/api/v1/jobs/"+id, "", 200), &j); err != nil {
			t.Fatal(err)
		}
		switch j.State {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("job %s ended %s: %s", id, j.State, j.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
}

// smokeDomains recomputes the service's simnet population in-process so
// the test submits domains the world actually contains.
func smokeDomains() []string {
	world := simnet.Generate(simnet.Config{Seed: smokeSeed, Scale: 0.02})
	src, _ := experiments.SnapshotSource(world, experiments.WeekSnapshot(0))
	var names []string
	src(func(d string) error { //nolint:errcheck // slice source never fails
		names = append(names, d)
		return nil
	})
	sort.Strings(names)
	return names[:64] // 4 shards at -shard-size 16
}

// smokeReport renders a TLSRPT aggregate report attributing sessions to
// domain.
func smokeReport(t *testing.T, domain string) string {
	t.Helper()
	r := tlsrpt.NewReport("Smoke Org", "tls@smoke.example", "smoke-1",
		time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2026, 8, 2, 0, 0, 0, 0, time.UTC))
	r.AddSuccess(tlsrpt.PolicyTypeSTS, domain, 250)
	r.AddFailure(tlsrpt.PolicyTypeSTS, domain, tlsrpt.ResultCertificateExpired, "mx."+domain, 7)
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestSmokeServe is the service's end-to-end crash drill: a job is
// submitted over HTTP against the simnet world, Prometheus /metrics is
// scraped while the service runs, the process is killed mid-job by the
// drill (exit 3), a restarted process resumes the job from its shard
// checkpoints, a TLSRPT report is ingested and joined into the results
// — and the final classifications are byte-identical to a fresh
// uninterrupted run.
func TestSmokeServe(t *testing.T) {
	if !*serveSmoke {
		t.Skip("run via make smoke-serve (-servesmoke not set)")
	}
	bin := filepath.Join(t.TempDir(), "mtasts-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	storeDir := filepath.Join(t.TempDir(), "store")
	domains := smokeDomains()
	submitBody, err := json.Marshal(map[string]any{"tenant": "smoke", "domains": domains})
	if err != nil {
		t.Fatal(err)
	}
	worldFlags := []string{"-store-dir", storeDir, "-seed", fmt.Sprint(smokeSeed),
		"-scale", smokeScale, "-shard-size", "16", "-workers", "8"}

	// Process 1: armed with the crash drill — it will kill itself after
	// two of the job's four shards.
	p1 := startServe(t, bin, append([]string{"-drill-stop-after-shards", "2"}, worldFlags...)...)

	// Scrape Prometheus /metrics off the live service: negotiated by
	// Accept header, typed, and already carrying the scansvc series.
	req, err := http.NewRequest("GET", p1.base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("scraping /metrics: %v", err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want the Prometheus exposition type", ct)
	}
	for _, want := range []string{"# TYPE scansvc_jobs_running gauge", "scansvc_jobs_submitted "} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("Prometheus scrape missing %q:\n%s", want, prom)
		}
	}

	// Submit the job; the drill will fire mid-run.
	var job struct {
		ID     string `json:"id"`
		Shards int    `json:"shards"`
	}
	if err := json.Unmarshal(api(t, "POST", p1.base+"/api/v1/jobs", string(submitBody), 202), &job); err != nil {
		t.Fatal(err)
	}
	if job.Shards != 4 {
		t.Fatalf("job has %d shards, want 4 (drill stops after 2)", job.Shards)
	}

	// A second scrape mid-job is best-effort: the drill exits the
	// process quickly, so a dead connection here is not a failure.
	if resp, err := http.Get(p1.base + "/metrics?format=prometheus"); err == nil {
		mid, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(mid), "scansvc_jobs_submitted 1") {
			t.Fatalf("mid-run scrape does not show the submitted job:\n%s", mid)
		}
	}

	if code := p1.wait(t); code != 3 {
		t.Fatalf("drill exit code = %d, want 3\n%s", code, p1.stderr.String())
	}

	// Process 2: same store, no drill. Start must resume the interrupted
	// job from its checkpoints and run it to done.
	p2 := startServe(t, bin, worldFlags...)
	waitJobDone(t, p2.base, job.ID)
	if !strings.Contains(p2.stderr.String()+string(api(t, "GET", p2.base+"/api/v1/jobs", "", 200)), job.ID) {
		t.Fatalf("restarted service does not know job %s", job.ID)
	}

	// Ingest a TLSRPT report for one scanned domain and fetch the joined
	// results: exactly one line must carry the report's evidence.
	target := domains[0]
	api(t, "POST", p2.base+"/api/v1/tlsrpt", smokeReport(t, target), 202)
	joined := api(t, "GET", p2.base+"/api/v1/jobs/"+job.ID+"/results?join=tlsrpt", "", 200)
	var lines, withRPT int
	sc := bufio.NewScanner(bytes.NewReader(joined))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			Scan   json.RawMessage `json:"scan"`
			TLSRPT *struct {
				Success int64 `json:"success"`
				Failure int64 `json:"failure"`
			} `json:"tlsrpt"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("joined line does not parse: %v", err)
		}
		lines++
		if line.TLSRPT != nil {
			withRPT++
			if line.TLSRPT.Success != 250 || line.TLSRPT.Failure != 7 {
				t.Fatalf("joined TLSRPT = %+v", line.TLSRPT)
			}
		}
	}
	if lines != len(domains) || withRPT != 1 {
		t.Fatalf("joined results: %d lines (%d with TLSRPT), want %d lines and exactly 1 with TLSRPT",
			lines, withRPT, len(domains))
	}

	// The resumed job's plain results, then a graceful shutdown.
	resumed := api(t, "GET", p2.base+"/api/v1/jobs/"+job.ID+"/results", "", 200)
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := p2.wait(t); code != 0 {
		t.Fatalf("graceful shutdown exit code = %d\n%s", code, p2.stderr.String())
	}

	// Process 3: fresh store, same world, no drill — the uninterrupted
	// reference run. Its results must match the resumed run byte for
	// byte.
	refFlags := []string{"-store-dir", filepath.Join(t.TempDir(), "ref"), "-seed", fmt.Sprint(smokeSeed),
		"-scale", smokeScale, "-shard-size", "16", "-workers", "8"}
	p3 := startServe(t, bin, refFlags...)
	var refJob struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(api(t, "POST", p3.base+"/api/v1/jobs", string(submitBody), 202), &refJob); err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, p3.base, refJob.ID)
	reference := api(t, "GET", p3.base+"/api/v1/jobs/"+refJob.ID+"/results", "", 200)
	if err := p3.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := p3.wait(t); code != 0 {
		t.Fatalf("reference shutdown exit code = %d\n%s", code, p3.stderr.String())
	}

	if !bytes.Equal(resumed, reference) {
		t.Fatalf("resumed results differ from uninterrupted run: %d vs %d bytes",
			len(resumed), len(reference))
	}
	fmt.Println("smoke-serve: job survived kill-and-restart; resumed classifications byte-identical")
}
