package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const scanBaseline = `{"rows": [
	{"backend": "flat", "domains": 1000, "seconds": 0.1, "domains_per_second": 10000},
	{"backend": "pipelined", "domains": 1000, "seconds": 0.02, "domains_per_second": 50000}
]}`

func runGuard(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestWithinToleranceAndFaster(t *testing.T) {
	base := write(t, "base.json", scanBaseline)
	cur := write(t, "cur.json", `{"rows": [
		{"backend": "flat", "domains": 1000, "domains_per_second": 8500},
		{"backend": "pipelined", "domains": 1000, "domains_per_second": 72000}
	]}`)
	code, out, errb := runGuard(t, "-baseline", base, "-current", cur)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb)
	}
	if strings.Count(out, ": ok") != 2 {
		t.Errorf("report:\n%s", out)
	}
}

func TestRegressionFails(t *testing.T) {
	base := write(t, "base.json", scanBaseline)
	cur := write(t, "cur.json", `{"rows": [
		{"backend": "flat", "domains": 1000, "domains_per_second": 7999},
		{"backend": "pipelined", "domains": 1000, "domains_per_second": 50000}
	]}`)
	code, out, errb := runGuard(t, "-baseline", base, "-current", cur)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s", code, out)
	}
	if !strings.Contains(out, "backend=flat domains=1000") || !strings.Contains(out, "REGRESSION") {
		t.Errorf("report:\n%s", out)
	}
	if !strings.Contains(errb, "1 row(s) regressed more than 20%") {
		t.Errorf("stderr: %s", errb)
	}
}

func TestMissingRowFails(t *testing.T) {
	base := write(t, "base.json", scanBaseline)
	cur := write(t, "cur.json", `{"rows": [
		{"backend": "flat", "domains": 1000, "domains_per_second": 10000}
	]}`)
	code, out, _ := runGuard(t, "-baseline", base, "-current", cur)
	if code != 1 || !strings.Contains(out, "MISSING") {
		t.Errorf("exit = %d, report:\n%s", code, out)
	}
}

func TestWorkersKeyAndCacheMetric(t *testing.T) {
	base := write(t, "base.json", `{"rows": [
		{"backend": "disk", "domains": 10000, "workers": 1, "deliveries_per_second": 6000000}
	]}`)
	cur := write(t, "cur.json", `{"rows": [
		{"backend": "disk", "domains": 10000, "workers": 1, "deliveries_per_second": 4000000}
	]}`)
	code, out, _ := runGuard(t, "-baseline", base, "-current", cur, "-tolerance", "0.5")
	if code != 0 {
		t.Fatalf("exit = %d (50%% tolerance should absorb a 33%% drop):\n%s", code, out)
	}
	if !strings.Contains(out, "backend=disk domains=10000 workers=1") ||
		!strings.Contains(out, "deliveries_per_second") {
		t.Errorf("report:\n%s", out)
	}
}

func TestOperationalErrors(t *testing.T) {
	base := write(t, "base.json", scanBaseline)
	if code, _, errb := runGuard(t); code != 2 || !strings.Contains(errb, "required") {
		t.Errorf("missing flags: exit = %d, stderr = %s", code, errb)
	}
	if code, _, _ := runGuard(t, "-baseline", base, "-current", filepath.Join(t.TempDir(), "nope.json")); code != 2 {
		t.Error("unreadable current file should exit 2")
	}
	bad := write(t, "bad.json", `{"rows": [{"seconds": 1}]}`)
	if code, _, errb := runGuard(t, "-baseline", bad, "-current", base); code != 2 || !strings.Contains(errb, "no identity fields") {
		t.Errorf("bad row: exit = %d, stderr = %s", code, errb)
	}
	empty := write(t, "empty.json", `{"rows": []}`)
	if code, _, _ := runGuard(t, "-baseline", empty, "-current", base); code != 2 {
		t.Error("empty baseline should exit 2")
	}
	if code, _, _ := runGuard(t, "-baseline", base, "-current", base, "-tolerance", "1.5"); code != 2 {
		t.Error("out-of-range tolerance should exit 2")
	}
}

// TestCommittedBaselinesParse keeps the guard honest against the real
// committed artifacts: both must load and self-compare clean.
func TestCommittedBaselinesParse(t *testing.T) {
	for _, name := range []string{"BENCH_scan.json", "BENCH_cache.json"} {
		path := filepath.Join("..", "..", name)
		code, out, errb := runGuard(t, "-baseline", path, "-current", path)
		if code != 0 {
			t.Errorf("%s self-compare: exit = %d\n%s%s", name, code, out, errb)
		}
	}
}
