// Command benchguard is the CI bench-regression bar: it compares a
// freshly generated benchmark JSON against its committed baseline
// (BENCH_scan.json, BENCH_cache.json) and fails when any row's
// throughput drops more than the tolerance below the baseline. Rows
// are matched by their backend/domains(/workers) key, and the gated
// metric is whichever *_per_second field the row carries, so the same
// binary guards both the scanner and the policy-cache benchmarks.
// Faster-than-baseline rows pass: the baseline is a floor, not a pin.
//
// Usage:
//
//	benchguard -baseline BENCH_scan.json -current /tmp/bench-scan.json [-tolerance 0.2]
//
// Exit codes: 0 within tolerance, 1 regression (or a baseline row
// missing from the current run), 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// row is one benchmark measurement reduced to its identity and metric.
type row struct {
	metric string
	value  float64
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "", "committed baseline JSON (required)")
	current := fs.String("current", "", "freshly generated JSON to gate (required)")
	tolerance := fs.Float64("tolerance", 0.20, "allowed fractional throughput drop below baseline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseline == "" || *current == "" {
		fmt.Fprintln(stderr, "benchguard: -baseline and -current are required")
		return 2
	}
	if *tolerance < 0 || *tolerance >= 1 {
		fmt.Fprintln(stderr, "benchguard: -tolerance must be in [0, 1)")
		return 2
	}
	base, err := loadRows(*baseline)
	if err != nil {
		fmt.Fprintf(stderr, "benchguard: %v\n", err)
		return 2
	}
	cur, err := loadRows(*current)
	if err != nil {
		fmt.Fprintf(stderr, "benchguard: %v\n", err)
		return 2
	}
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	regressions := 0
	for _, k := range keys {
		b := base[k]
		c, ok := cur[k]
		if !ok {
			fmt.Fprintf(stdout, "%-44s %s: baseline %.0f, MISSING from current run\n", k, b.metric, b.value)
			regressions++
			continue
		}
		floor := b.value * (1 - *tolerance)
		status := "ok"
		if c.value < floor {
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(stdout, "%-44s %s: baseline %.0f, current %.0f, floor %.0f: %s\n",
			k, b.metric, b.value, c.value, floor, status)
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "benchguard: %d row(s) regressed more than %.0f%% below %s\n",
			regressions, *tolerance*100, *baseline)
		return 1
	}
	return 0
}

// loadRows reads a BENCH_*.json document and indexes its rows by
// identity key.
func loadRows(path string) (map[string]row, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Rows []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Rows) == 0 {
		return nil, fmt.Errorf("%s: no benchmark rows", path)
	}
	out := make(map[string]row, len(doc.Rows))
	for i, m := range doc.Rows {
		key, r, err := reduceRow(m)
		if err != nil {
			return nil, fmt.Errorf("%s row %d: %w", path, i, err)
		}
		out[key] = r
	}
	return out, nil
}

// reduceRow derives a row's identity (backend/domains, plus workers
// when present) and its throughput metric.
func reduceRow(m map[string]any) (string, row, error) {
	var parts []string
	for _, field := range []string{"backend", "domains", "workers"} {
		if v, ok := m[field]; ok {
			parts = append(parts, fmt.Sprintf("%s=%v", field, v))
		}
	}
	if len(parts) == 0 {
		return "", row{}, fmt.Errorf("no identity fields (backend/domains/workers)")
	}
	for field, v := range m {
		if !strings.HasSuffix(field, "_per_second") {
			continue
		}
		val, ok := v.(float64)
		if !ok {
			return "", row{}, fmt.Errorf("%s is not a number", field)
		}
		return strings.Join(parts, " "), row{metric: field, value: val}, nil
	}
	return "", row{}, fmt.Errorf("no *_per_second metric")
}
