# Standard entry points; CI runs `make check` and `make smoke-faults`.
GO ?= go

.PHONY: build test race vet check reproduce smoke-faults

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages (worker pool + lock-free
# metrics + retry/fault layers).
race:
	$(GO) test -race ./internal/obs ./internal/scanner ./internal/retry ./internal/faults

vet:
	$(GO) vet ./...

check: build vet test race

reproduce:
	$(GO) run ./cmd/reproduce

# Seeded fault-injection smoke: scans healthy loopback deployments
# through ~10% DNS loss + SERVFAIL/REFUSED blips + connection resets and
# fails on any misclassification or same-seed nondeterminism
# (docs/ROBUSTNESS.md).
smoke-faults:
	$(GO) run ./cmd/reproduce -experiment robustness -fault-seed 7
