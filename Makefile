# Standard entry points; CI runs `make check`.
GO ?= go

.PHONY: build test race vet check reproduce

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages (worker pool + lock-free metrics).
race:
	$(GO) test -race ./internal/obs ./internal/scanner

vet:
	$(GO) vet ./...

check: build vet test race

reproduce:
	$(GO) run ./cmd/reproduce
