# Standard entry points; CI runs `make check`, `make smoke-faults`, and
# `make fuzz`.
GO ?= go

# Per-target budget for the CI fuzz smoke (`make fuzz`); raise it
# locally for real exploration, e.g. `make fuzz FUZZTIME=5m`.
FUZZTIME ?= 10s

.PHONY: build test race vet lint lint-baseline check reproduce smoke-faults fuzz bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the whole module; the concurrency-heavy packages (worker
# pool, lock-free metrics, retry/fault layers, loopback servers) all
# have goroutine-crossing tests.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (docs/LINT.md): dropped errors,
# context propagation, metric-name drift against docs/OBSERVABILITY.md,
# dead values, raw sleeps in retry paths. Fails on any finding not in
# the committed baseline (.mtastslint-baseline.json, kept empty).
lint:
	$(GO) run ./cmd/mtastslint

# Regenerate the baseline from current findings. The goal state is an
# empty baseline: prefer fixing or //lint:ignore-ing findings instead.
lint-baseline:
	$(GO) run ./cmd/mtastslint -write-baseline

check: build vet lint test race

reproduce:
	$(GO) run ./cmd/reproduce

# Seeded fault-injection smoke: scans healthy loopback deployments
# through ~10% DNS loss + SERVFAIL/REFUSED blips + connection resets and
# fails on any misclassification or same-seed nondeterminism
# (docs/ROBUSTNESS.md).
smoke-faults:
	$(GO) run ./cmd/reproduce -experiment robustness -fault-seed 7

# Coverage-guided fuzzing smoke over the wire-format parsers (`go test
# -fuzz` accepts one target per invocation). The committed seed corpora
# under */testdata/fuzz/ also run as part of the plain test suite.
fuzz:
	$(GO) test ./internal/dnsmsg -run '^$$' -fuzz '^FuzzDecodeMessage$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dnsmsg -run '^$$' -fuzz '^FuzzUnpack$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mtasts -run '^$$' -fuzz '^FuzzParsePolicy$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mtasts -run '^$$' -fuzz '^FuzzParseRecord$$' -fuzztime $(FUZZTIME)

# Scheduler benchmarks (flat pool vs staged pipeline) plus the
# BENCH_scan.json comparison the tentpole's >=2x acceptance bar reads
# (docs/PIPELINE.md).
bench:
	$(GO) test ./internal/scanner -run '^$$' -bench 'BenchmarkRunner(Flat|Pipelined)' -benchtime 1x -count 1
	$(GO) test ./internal/scanner -run '^TestBenchScanJSON$$' -count 1 -benchscan-out $(CURDIR)/BENCH_scan.json
