# Standard entry points; CI runs `make check` and `make smoke-faults`.
GO ?= go

.PHONY: build test race vet lint lint-baseline check reproduce smoke-faults

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the whole module; the concurrency-heavy packages (worker
# pool, lock-free metrics, retry/fault layers, loopback servers) all
# have goroutine-crossing tests.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (docs/LINT.md): dropped errors,
# context propagation, metric-name drift against docs/OBSERVABILITY.md,
# dead values, raw sleeps in retry paths. Fails on any finding not in
# the committed baseline (.mtastslint-baseline.json, kept empty).
lint:
	$(GO) run ./cmd/mtastslint

# Regenerate the baseline from current findings. The goal state is an
# empty baseline: prefer fixing or //lint:ignore-ing findings instead.
lint-baseline:
	$(GO) run ./cmd/mtastslint -write-baseline

check: build vet lint test race

reproduce:
	$(GO) run ./cmd/reproduce

# Seeded fault-injection smoke: scans healthy loopback deployments
# through ~10% DNS loss + SERVFAIL/REFUSED blips + connection resets and
# fails on any misclassification or same-seed nondeterminism
# (docs/ROBUSTNESS.md).
smoke-faults:
	$(GO) run ./cmd/reproduce -experiment robustness -fault-seed 7
