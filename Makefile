# Standard entry points; CI runs `make check`, `make smoke-faults`,
# `make smoke-adversary`, `make smoke-campaign`, `make smoke-send`,
# `make smoke-serve`, and `make fuzz`.
GO ?= go

# Per-target budget for the CI fuzz smoke (`make fuzz`); raise it
# locally for real exploration, e.g. `make fuzz FUZZTIME=5m`.
FUZZTIME ?= 10s

.PHONY: build test race vet lint lint-baseline check docs reproduce smoke-faults smoke-adversary smoke-campaign smoke-send smoke-serve fuzz bench bench-check leaktest

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the whole module; the concurrency-heavy packages (worker
# pool, lock-free metrics, retry/fault layers, loopback servers) all
# have goroutine-crossing tests.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (docs/LINT.md): dropped errors,
# context propagation, metric-name drift against docs/OBSERVABILITY.md,
# dead values, raw sleeps in retry paths, plus the concurrency pack —
# blocking ops under held mutexes (lockhold), lock leaks (unlockpath),
# unstoppable goroutines (goroleak) and WaitGroup misuse (wgpair).
# Fails on any finding not in the committed baseline
# (.mtastslint-baseline.json, kept empty).
lint:
	$(GO) run ./cmd/mtastslint

# Regenerate the baseline from current findings. The goal state is an
# empty baseline: prefer fixing or //lint:ignore-ing findings instead.
lint-baseline:
	$(GO) run ./cmd/mtastslint -write-baseline

check: build vet lint docs test race leaktest smoke-adversary smoke-serve

# Goroutine-leak harness (internal/leakcheck): the concurrency-heavy
# packages declare a TestMain that fails the binary if any test leaves
# a goroutine running. -count 1 defeats the test cache so the check is
# live even right after `make race`.
leaktest:
	$(GO) test -race -count 1 ./internal/leakcheck ./internal/scanner ./internal/policycache ./internal/campaign ./internal/sf ./internal/obs ./internal/mta ./internal/smtpclient ./internal/experiments ./internal/scansvc

# Docs-vs-code gates that run fast enough to gate every check: CLI
# flags against README/docs (internal/docscheck), plus the linted
# catalogs (metric names, error codes) indirectly via `make lint` and
# the full test suite.
docs:
	$(GO) test ./internal/docscheck/ -count 1

reproduce:
	$(GO) run ./cmd/reproduce

# Seeded fault-injection smoke: scans healthy loopback deployments
# through ~10% DNS loss + SERVFAIL/REFUSED blips + connection resets and
# fails on any misclassification or same-seed nondeterminism
# (docs/ROBUSTNESS.md).
smoke-faults:
	$(GO) run ./cmd/reproduce -experiment robustness -fault-seed 7

# Seeded adversary smoke: mounts every registered attack on live
# loopback worlds and drives the full sender-behavior × policy-mode
# matrix through the real delivery stack, twice. Fails on any model
# mismatch, enforce-mode downgrade, unreported testing-mode violation,
# or same-seed divergence (docs/ADVERSARY.md).
smoke-adversary:
	$(GO) run ./cmd/reproduce -experiment sendertest -seed 7

# Campaign crash drill over a real on-disk store: run two weeks but
# stop mid-week-0 (exit 3 is the drill succeeding), resume to
# completion, then require status/diff to see the full campaign and the
# week-1 export to be byte-identical to a fresh uninterrupted run
# (docs/CAMPAIGN.md). Built first because `go run` would mask exit 3.
smoke-campaign:
	$(GO) build -o /tmp/mtasts-campaign-smoke ./cmd/mtasts-campaign
	rm -rf /tmp/mtasts-campaign-smoke-store /tmp/mtasts-campaign-smoke-ref
	/tmp/mtasts-campaign-smoke run -dir /tmp/mtasts-campaign-smoke-store -weeks 2 -scale 0.02 -shard-size 64 -stop-after-shards 3; \
		test $$? -eq 3 || { echo "smoke-campaign: expected exit 3 from the crash drill"; exit 1; }
	/tmp/mtasts-campaign-smoke resume -dir /tmp/mtasts-campaign-smoke-store -weeks 2 -scale 0.02 -shard-size 64
	/tmp/mtasts-campaign-smoke status -dir /tmp/mtasts-campaign-smoke-store | grep -q "2 weeks done" || { echo "smoke-campaign: status does not report 2 completed weeks"; exit 1; }
	/tmp/mtasts-campaign-smoke diff -dir /tmp/mtasts-campaign-smoke-store -old 0 -new 1 > /dev/null
	/tmp/mtasts-campaign-smoke run -dir /tmp/mtasts-campaign-smoke-ref -weeks 2 -scale 0.02 -shard-size 64
	/tmp/mtasts-campaign-smoke export -dir /tmp/mtasts-campaign-smoke-store -week 1 > /tmp/mtasts-campaign-smoke-store.jsonl
	/tmp/mtasts-campaign-smoke export -dir /tmp/mtasts-campaign-smoke-ref -week 1 > /tmp/mtasts-campaign-smoke-ref.jsonl
	cmp /tmp/mtasts-campaign-smoke-store.jsonl /tmp/mtasts-campaign-smoke-ref.jsonl
	@echo "smoke-campaign: crash-resume snapshot byte-identical"

# Sender crash-restart drill over the durable policy cache: a cold
# mtasts-send process fetches and delivers, the policy host is killed,
# and a second process must deliver warm — enforcing the on-disk policy
# with zero policy fetches (docs/SENDER.md). Builds the real binary.
smoke-send:
	$(GO) test ./cmd/mtasts-send -run '^TestSmokeSend$$' -count 1 -sendsmoke -v

# Service crash drill with the real mtasts-serve binary: submit a job
# over HTTP, scrape Prometheus /metrics off the live process, kill the
# service mid-job (-drill-stop-after-shards), restart on the same store,
# watch the job resume to done, ingest a TLSRPT report and fetch the
# joined results — then require the resumed job's result bytes to equal
# a fresh uninterrupted run's (docs/SERVICE.md).
smoke-serve:
	$(GO) test ./cmd/mtasts-serve -run '^TestSmokeServe$$' -count 1 -servesmoke -v

# Coverage-guided fuzzing smoke over the wire-format parsers (`go test
# -fuzz` accepts one target per invocation). The committed seed corpora
# under */testdata/fuzz/ also run as part of the plain test suite.
fuzz:
	$(GO) test ./internal/dnsmsg -run '^$$' -fuzz '^FuzzDecodeMessage$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dnsmsg -run '^$$' -fuzz '^FuzzUnpack$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mtasts -run '^$$' -fuzz '^FuzzParsePolicy$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mtasts -run '^$$' -fuzz '^FuzzParseRecord$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tlsrpt -run '^$$' -fuzz '^FuzzIngestReport$$' -fuzztime $(FUZZTIME)

# Scheduler benchmarks (flat pool vs staged pipeline) plus the
# BENCH_scan.json comparison the tentpole's >=2x acceptance bar reads
# (docs/PIPELINE.md), and the sender policy-cache delivery benchmarks
# emitting BENCH_cache.json (docs/SENDER.md).
bench:
	$(GO) test ./internal/scanner -run '^$$' -bench 'BenchmarkRunner(Flat|Pipelined)' -benchtime 1x -count 1
	$(GO) test ./internal/scanner -run '^TestBenchScanJSON$$' -count 1 -benchscan-out $(CURDIR)/BENCH_scan.json
	$(GO) test ./internal/policycache -run '^$$' -bench 'BenchmarkPolicyCacheDeliveries' -benchmem -count 1
	$(GO) test ./internal/policycache -run '^TestBenchCacheJSON$$' -count 1 -benchcache-out $(CURDIR)/BENCH_cache.json

# Bench regression bar: regenerate the benchmark JSONs into /tmp (the
# committed BENCH_*.json stay untouched) and fail if any row's
# throughput drops more than 20% below the committed baseline
# (cmd/benchguard). CI runs this on every push.
bench-check:
	$(GO) test ./internal/scanner -run '^TestBenchScanJSON$$' -count 1 -benchscan-out /tmp/mtasts-bench-scan.json
	$(GO) test ./internal/policycache -run '^TestBenchCacheJSON$$' -count 1 -benchcache-out /tmp/mtasts-bench-cache.json
	$(GO) run ./cmd/benchguard -baseline BENCH_scan.json -current /tmp/mtasts-bench-scan.json
	$(GO) run ./cmd/benchguard -baseline BENCH_cache.json -current /tmp/mtasts-bench-cache.json
