package mtastsrepro

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   * Live vs Offline scanning — the substitution argument: the offline
//     artifact path must be orders of magnitude cheaper than driving real
//     sockets while yielding the same verdicts (equality is pinned by
//     tests; the cost gap is measured here).
//   * The sender-side TOFU policy cache — cold (fetch over HTTPS every
//     time) vs warm (cache hit) validation.
//   * The resolver's response cache.

import (
	"context"
	"net"
	"net/netip"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/netsecurelab/mtasts/internal/dnsmsg"
	"github.com/netsecurelab/mtasts/internal/dnsserver"
	"github.com/netsecurelab/mtasts/internal/dnszone"
	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/policysrv"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/smtpd"
)

// liveLab is a loopback substrate shared by the live benchmarks.
type liveLab struct {
	ca      *pki.CA
	dnsAddr string
	pol     *policysrv.Server
	smtp    int // SMTP port
	live    *scanner.Live
}

var (
	labOnce sync.Once
	lab     *liveLab
	labErr  error
)

func getLab(b *testing.B) *liveLab {
	b.Helper()
	labOnce.Do(func() { lab, labErr = buildLab() })
	if labErr != nil {
		b.Fatalf("lab: %v", labErr)
	}
	return lab
}

func buildLab() (*liveLab, error) {
	const domain = "bench.example"
	mxHost := "mx." + domain
	ca, err := pki.NewCA("Bench CA", time.Now())
	if err != nil {
		return nil, err
	}
	zone := dnszone.New(domain)
	loop := dnsmsg.AData{Addr: netip.MustParseAddr("127.0.0.1")}
	zone.MustAdd(dnsmsg.RR{Name: "_mta-sts." + domain, Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN,
		TTL: 300, Data: dnsmsg.NewTXT("v=STSv1; id=bench1;")})
	zone.MustAdd(dnsmsg.RR{Name: "mta-sts." + domain, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 300, Data: loop})
	zone.MustAdd(dnsmsg.RR{Name: domain, Type: dnsmsg.TypeMX, Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.MXData{Preference: 10, Host: mxHost}})
	zone.MustAdd(dnsmsg.RR{Name: mxHost, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 300, Data: loop})
	dns := dnsserver.New(nil)
	dns.AddZone(zone)
	dnsAddr, err := dns.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}

	pol := policysrv.New(ca, nil)
	pol.AddTenant(&policysrv.Tenant{Domain: domain, Policy: mtasts.Policy{
		Version: mtasts.Version, Mode: mtasts.ModeEnforce, MaxAge: 86400,
		MXPatterns: []string{mxHost},
	}})
	if _, err := pol.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}

	leaf, err := ca.Issue(pki.IssueOptions{Names: []string{mxHost}})
	if err != nil {
		return nil, err
	}
	cert := leaf.TLSCertificate()
	mx := smtpd.New(smtpd.Behavior{Hostname: mxHost, Certificate: &cert})
	mxAddr, err := mx.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	_, portStr, _ := net.SplitHostPort(mxAddr.String())
	smtpPort, _ := strconv.Atoi(portStr)

	return &liveLab{
		ca:      ca,
		dnsAddr: dnsAddr.String(),
		pol:     pol,
		smtp:    smtpPort,
		live: &scanner.Live{
			DNS:       resolver.New(dnsAddr.String()),
			Roots:     ca.Pool(),
			HTTPSPort: pol.Port(),
			SMTPPort:  smtpPort,
			HeloName:  "bench.invalid",
			Timeout:   5 * time.Second,
		},
	}, nil
}

// BenchmarkAblationLiveScan scans one domain over real sockets (DNS over
// UDP, HTTPS policy fetch with a fresh TLS handshake, SMTP STARTTLS
// probe).
func BenchmarkAblationLiveScan(b *testing.B) {
	l := getLab(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := l.live.ScanDomain(ctx, "bench.example")
		if !r.PolicyOK {
			b.Fatalf("scan failed: stage %v", r.PolicyStage)
		}
	}
}

// BenchmarkAblationOfflineScan evaluates the equivalent artifacts through
// the same parsers/validators with no sockets.
func BenchmarkAblationOfflineScan(b *testing.B) {
	now := time.Now()
	a := scanner.Artifacts{
		Domain:             "bench.example",
		TXT:                []string{"v=STSv1; id=bench1;"},
		MXHosts:            []string{"mx.bench.example"},
		PolicyHostResolves: true,
		TCPOpen:            true,
		PolicyCert:         pki.GoodProfile(now, "mta-sts.bench.example"),
		HTTPStatus:         200,
		PolicyBody:         []byte("version: STSv1\r\nmode: enforce\r\nmx: mx.bench.example\r\nmax_age: 86400\r\n"),
		MXSTARTTLS:         map[string]bool{"mx.bench.example": true},
		MXCerts:            map[string]pki.CertProfile{"mx.bench.example": pki.GoodProfile(now, "mx.bench.example")},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := scanner.ScanArtifacts(a, now)
		if !r.PolicyOK {
			b.Fatal("offline scan failed")
		}
	}
}

// BenchmarkAblationValidatorColdCache validates with the policy cache
// disabled: every evaluation refetches the policy over HTTPS.
func BenchmarkAblationValidatorColdCache(b *testing.B) {
	l := getLab(b)
	v := newBenchValidator(l, nil)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := v.Validate(ctx, "bench.example", "mx.bench.example")
		if err != nil || ev.Action != mtasts.ActionDeliver {
			b.Fatalf("validate: %+v %v", ev, err)
		}
	}
}

// BenchmarkAblationValidatorWarmCache validates with the TOFU cache in
// place: after the first fetch, evaluations are pure in-memory work.
func BenchmarkAblationValidatorWarmCache(b *testing.B) {
	l := getLab(b)
	v := newBenchValidator(l, mtasts.NewPolicyCache(16))
	ctx := context.Background()
	if _, err := v.Validate(ctx, "bench.example", "mx.bench.example"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := v.Validate(ctx, "bench.example", "mx.bench.example")
		if err != nil || ev.Action != mtasts.ActionDeliver {
			b.Fatalf("validate: %+v %v", ev, err)
		}
	}
}

func newBenchValidator(l *liveLab, cache *mtasts.PolicyCache) *mtasts.Validator {
	dnsClient := resolver.New(l.dnsAddr)
	return &mtasts.Validator{
		Resolver: scanner.TXTResolverAdapter{Client: dnsClient},
		Fetcher: &mtasts.Fetcher{
			Resolver: mtasts.AddrResolverFunc(func(ctx context.Context, host string) ([]string, error) {
				addrs, err := dnsClient.LookupAddrs(ctx, host, false)
				if err != nil {
					return nil, err
				}
				out := make([]string, len(addrs))
				for i, a := range addrs {
					out[i] = a.String()
				}
				return out, nil
			}),
			RootCAs: l.ca.Pool(),
			Port:    l.pol.Port(),
			Timeout: 5 * time.Second,
		},
		Cache: cache,
	}
}

// BenchmarkAblationResolverNoCache measures raw wire lookups with the
// response cache disabled.
func BenchmarkAblationResolverNoCache(b *testing.B) {
	l := getLab(b)
	c := resolver.New(l.dnsAddr)
	c.Cache = nil
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.LookupTXT(ctx, "_mta-sts.bench.example"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationResolverWithCache measures cached lookups.
func BenchmarkAblationResolverWithCache(b *testing.B) {
	l := getLab(b)
	c := resolver.New(l.dnsAddr)
	ctx := context.Background()
	if _, err := c.LookupTXT(ctx, "_mta-sts.bench.example"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.LookupTXT(ctx, "_mta-sts.bench.example"); err != nil {
			b.Fatal(err)
		}
	}
}
