module github.com/netsecurelab/mtasts

go 1.22
