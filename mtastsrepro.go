// Package mtastsrepro is the public API of the MTA-STS reproduction: a
// production-quality RFC 8461 implementation (record and policy parsing,
// mx matching, policy fetching with a staged error taxonomy, a TOFU policy
// cache, and the full sender validation flow), the measurement scanner the
// study is built on, and the calibrated ecosystem model that regenerates
// every table and figure of the paper.
//
// The package re-exports the stable surface of the internal packages so
// downstream users interact with one import path:
//
//	import mtastsrepro "github.com/netsecurelab/mtasts"
//
//	rec, err := mtastsrepro.ParseRecord("v=STSv1; id=20240929;")
//	policy, err := mtastsrepro.ParsePolicy(body)
//	ok := policy.Matches("mx1.example.com")
//
// For end-to-end validation against live infrastructure, see Validator and
// CheckDomain; for the paper's experiments, see the experiments package
// via cmd/reproduce.
package mtastsrepro

import (
	"context"
	"crypto/x509"
	"time"

	"github.com/netsecurelab/mtasts/internal/mtasts"
	"github.com/netsecurelab/mtasts/internal/pki"
	"github.com/netsecurelab/mtasts/internal/resolver"
	"github.com/netsecurelab/mtasts/internal/scanner"
	"github.com/netsecurelab/mtasts/internal/simnet"
)

// Core RFC 8461 types.
type (
	// Record is a parsed "_mta-sts" TXT record.
	Record = mtasts.Record
	// Policy is a parsed MTA-STS policy file.
	Policy = mtasts.Policy
	// Mode is a policy mode (enforce/testing/none).
	Mode = mtasts.Mode
	// Fetcher retrieves policies over HTTPS with RFC 8461 constraints.
	Fetcher = mtasts.Fetcher
	// FetchError carries the retrieval failure stage.
	FetchError = mtasts.FetchError
	// Stage is the policy-retrieval pipeline stage of a failure.
	Stage = mtasts.Stage
	// PolicyCache is the sender-side TOFU policy store.
	PolicyCache = mtasts.PolicyCache
	// Validator is the sender-side validation engine.
	Validator = mtasts.Validator
	// Evaluation is a full validation outcome.
	Evaluation = mtasts.Evaluation
	// Action is the delivery decision of a compliant sender.
	Action = mtasts.Action
)

// Policy modes.
const (
	ModeEnforce = mtasts.ModeEnforce
	ModeTesting = mtasts.ModeTesting
	ModeNone    = mtasts.ModeNone
)

// Delivery decisions.
const (
	ActionDeliver            = mtasts.ActionDeliver
	ActionDeliverUnvalidated = mtasts.ActionDeliverUnvalidated
	ActionRefuse             = mtasts.ActionRefuse
)

// Retrieval stages.
const (
	StageNone   = mtasts.StageNone
	StageDNS    = mtasts.StageDNS
	StageTCP    = mtasts.StageTCP
	StageTLS    = mtasts.StageTLS
	StageHTTP   = mtasts.StageHTTP
	StageSyntax = mtasts.StageSyntax
)

// ParseRecord parses one TXT value as an MTA-STS record per RFC 8461 §3.1.
func ParseRecord(txt string) (Record, error) { return mtasts.ParseRecord(txt) }

// DiscoverRecord applies the multi-record rule to a full TXT RRset.
func DiscoverRecord(txts []string) (Record, error) { return mtasts.DiscoverRecord(txts) }

// ParsePolicy parses a policy file body per RFC 8461 §3.2.
func ParsePolicy(body []byte) (Policy, error) { return mtasts.ParsePolicy(body) }

// MatchMX reports whether an MX host matches one mx pattern (§4.1).
func MatchMX(pattern, mxHost string) bool { return mtasts.MatchMX(pattern, mxHost) }

// CheckMXPattern validates the syntax of one mx pattern.
func CheckMXPattern(pattern string) error { return mtasts.CheckMXPattern(pattern) }

// PolicyHost returns "mta-sts." + domain.
func PolicyHost(domain string) string { return mtasts.PolicyHost(domain) }

// PolicyURL returns the well-known HTTPS URL of a domain's policy.
func PolicyURL(domain string) string { return mtasts.PolicyURL(domain) }

// NewPolicyCache returns a TOFU policy cache bounded to max domains.
func NewPolicyCache(max int) *PolicyCache { return mtasts.NewPolicyCache(max) }

// Scanner types: the measurement pipeline of the study.
type (
	// DomainResult is everything one scan records about a domain.
	DomainResult = scanner.DomainResult
	// ScanSummary aggregates a snapshot of results.
	ScanSummary = scanner.Summary
	// LiveScanner probes real DNS/HTTPS/SMTP infrastructure.
	LiveScanner = scanner.Live
	// Artifacts are materialized scan observables for offline evaluation.
	Artifacts = scanner.Artifacts
)

// ScanArtifacts evaluates materialized observables through the same
// parsers and validators the live scanner uses.
func ScanArtifacts(a Artifacts, now time.Time) DomainResult {
	return scanner.ScanArtifacts(a, now)
}

// Summarize aggregates scan results.
func Summarize(results []DomainResult) ScanSummary { return scanner.Summarize(results) }

// CheckOptions configures CheckDomain.
type CheckOptions struct {
	// DNSAddr is the DNS server ("host:port") the wire resolver queries.
	DNSAddr string
	// Roots is the PKIX trust store (nil: system store semantics do not
	// apply to the wire fetcher — supply the CA used by the substrate).
	Roots *x509.CertPool
	// HTTPSPort / SMTPPort override 443/25.
	HTTPSPort, SMTPPort int
	// Timeout bounds each probe. Zero means 5s.
	Timeout time.Duration
}

// CheckDomain runs the full measurement pipeline for one domain against
// live infrastructure: record discovery, policy retrieval with the staged
// error taxonomy, MX STARTTLS certificate collection, and consistency
// analysis.
func CheckDomain(ctx context.Context, domain string, opts CheckOptions) DomainResult {
	live := &scanner.Live{
		DNS:       resolver.New(opts.DNSAddr),
		Roots:     opts.Roots,
		HTTPSPort: opts.HTTPSPort,
		SMTPPort:  opts.SMTPPort,
		HeloName:  "mtastsrepro.invalid",
		Timeout:   opts.Timeout,
	}
	return live.ScanDomain(ctx, domain)
}

// CertProblem is the PKIX validation outcome taxonomy.
type CertProblem = pki.Problem

// Certificate validation outcomes.
const (
	CertOK           = pki.OK
	CertExpired      = pki.ProblemExpired
	CertSelfSigned   = pki.ProblemSelfSigned
	CertUntrusted    = pki.ProblemUntrusted
	CertNameMismatch = pki.ProblemNameMismatch
	CertMissing      = pki.ProblemNoCertificate
)

// CertProfile is the descriptor form of a server certificate used by the
// offline scan pipeline.
type CertProfile = pki.CertProfile

// GoodCertProfile returns a profile that validates for the names around
// now.
func GoodCertProfile(now time.Time, names ...string) CertProfile {
	return pki.GoodProfile(now, names...)
}

// ExpiredCertProfile returns a profile whose validity has ended.
func ExpiredCertProfile(now time.Time, names ...string) CertProfile {
	return pki.ExpiredProfile(now, names...)
}

// SelfSignedCertProfile returns a self-issued profile.
func SelfSignedCertProfile(now time.Time, names ...string) CertProfile {
	return pki.SelfSignedProfile(now, names...)
}

// World is the calibrated synthetic MTA-STS ecosystem.
type World = simnet.World

// WorldConfig parameterizes ecosystem generation.
type WorldConfig = simnet.Config

// GenerateWorld builds a synthetic ecosystem; Scale 1.0 reproduces the
// paper's 68K-domain final snapshot.
func GenerateWorld(cfg WorldConfig) *World { return simnet.Generate(cfg) }
