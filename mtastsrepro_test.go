package mtastsrepro

import (
	"testing"
	"time"
)

func TestFacadeRecordParsing(t *testing.T) {
	rec, err := ParseRecord("v=STSv1; id=20240929;")
	if err != nil || rec.ID != "20240929" {
		t.Fatalf("ParseRecord = %+v, %v", rec, err)
	}
	if _, err := ParseRecord("v=STSv1; id=bad-id;"); err == nil {
		t.Error("bad id accepted")
	}
	rec, err = DiscoverRecord([]string{"v=spf1 -all", "v=STSv1; id=1;"})
	if err != nil || rec.ID != "1" {
		t.Errorf("DiscoverRecord = %+v, %v", rec, err)
	}
}

func TestFacadePolicyParsing(t *testing.T) {
	p, err := ParsePolicy([]byte("version: STSv1\nmode: enforce\nmx: mx.example.com\nmax_age: 604800\n"))
	if err != nil || p.Mode != ModeEnforce {
		t.Fatalf("ParsePolicy = %+v, %v", p, err)
	}
	if !p.Matches("mx.example.com") || p.Matches("evil.example.net") {
		t.Error("Matches misbehaves")
	}
	if !MatchMX("*.example.com", "mx.example.com") {
		t.Error("MatchMX wildcard failed")
	}
	if err := CheckMXPattern("user@example.com"); err == nil {
		t.Error("CheckMXPattern accepted an email address")
	}
}

func TestFacadeHelpers(t *testing.T) {
	if PolicyHost("example.com") != "mta-sts.example.com" {
		t.Error("PolicyHost")
	}
	if PolicyURL("example.com") != "https://mta-sts.example.com/.well-known/mta-sts.txt" {
		t.Error("PolicyURL")
	}
	pc := NewPolicyCache(4)
	pc.Store("example.com", Policy{Version: "STSv1", Mode: ModeEnforce, MaxAge: 60,
		MXPatterns: []string{"mx.example.com"}}, "id1")
	if _, ok := pc.Get("example.com"); !ok {
		t.Error("cache miss")
	}
}

func TestFacadeWorldAndScan(t *testing.T) {
	w := GenerateWorld(WorldConfig{Seed: 1, Scale: 0.01})
	if len(w.Domains) == 0 {
		t.Fatal("empty world")
	}
	results := w.ScanSnapshot(10)
	s := Summarize(results)
	if s.WithRecord == 0 {
		t.Error("no MTA-STS domains in snapshot")
	}
}

func TestFacadeScanArtifacts(t *testing.T) {
	now := time.Now()
	a := Artifacts{
		Domain:             "example.com",
		TXT:                []string{"v=STSv1; id=1;"},
		MXHosts:            []string{"mx.example.com"},
		PolicyHostResolves: true,
		TCPOpen:            true,
		PolicyCert:         GoodCertProfile(now, PolicyHost("example.com")),
		HTTPStatus:         404,
	}
	r := ScanArtifacts(a, now)
	if r.PolicyOK || r.PolicyStage != StageHTTP {
		t.Errorf("r = %+v", r)
	}
	if !r.Misconfigured() {
		t.Error("404 policy should be misconfigured")
	}
}
